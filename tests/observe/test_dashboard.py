"""Console rendering of metric snapshots and the live watch loop.

The dashboard is read-only plumbing over snapshots, so the tests
build snapshots directly (no server needed) and assert on the text:
the full console listing, the curated serve panel with and without a
previous frame (rates need two), and the watch loop's in-place ANSI
refresh.  ``fetch_metrics`` gets one live round-trip against a real
server to pin the scrape-parse-render path end to end.
"""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.errors import ObservabilityError
from repro.observe.dashboard import (
    CLEAR_SCREEN,
    fetch_metrics,
    render_console,
    render_dashboard,
    watch,
)
from repro.observe.metrics import MetricsRegistry, MetricsSnapshot


def serve_registry(requests: int = 4) -> MetricsRegistry:
    """A registry shaped like a busy serve process."""
    registry = MetricsRegistry()
    counter = registry.counter(
        "repro_serve_requests_total", "Requests.", ("kind", "outcome")
    )
    counter.labels(kind="tune", outcome="warm").inc(requests - 1)
    counter.labels(kind="tune", outcome="computed").inc()
    histogram = registry.histogram(
        "repro_serve_request_seconds",
        "Latency.",
        ("kind", "outcome"),
        buckets=(0.01, 0.1, 1.0),
    )
    for value in (0.005, 0.05, 0.5, 0.05):
        histogram.labels(kind="tune", outcome="warm").observe(value)
    coalesce = registry.counter(
        "repro_serve_coalesce_total", "Coalescing.", ("role",)
    )
    coalesce.labels(role="leader").inc(2)
    coalesce.labels(role="follower").inc(5)
    store = registry.counter(
        "repro_store_artifact_total", "Store events.", ("event",)
    )
    store.labels(event="hit").inc(3)
    store.labels(event="miss").inc(1)
    registry.gauge("repro_dispatch_pending", "Pending.").set(2)
    registry.gauge("repro_dispatch_capacity", "Capacity.").set(8)
    registry.gauge("repro_serve_inflight_requests", "In flight.").set(1)
    return registry


class TestRenderConsole:
    def test_empty_snapshot(self):
        assert render_console(MetricsSnapshot()) == "no metrics recorded\n"

    def test_lists_every_family_and_sample(self):
        text = render_console(serve_registry().snapshot())
        assert "repro_serve_requests_total (counter)" in text
        assert 'kind="tune",outcome="warm"' in text
        assert "repro_serve_request_seconds (histogram)" in text
        assert "count=4" in text and "p95<=" in text
        assert "repro_dispatch_pending (gauge)" in text


class TestRenderDashboard:
    def test_first_frame_shows_totals_only(self):
        text = render_dashboard(serve_registry().snapshot())
        assert "requests   total=4" in text
        assert "rate=" not in text
        assert "warm=3" in text and "computed=1" in text
        assert "coalesce   leaders=2  followers=5" in text
        assert "artifact-hit 75.0% of 4" in text
        assert "queue=2/8" in text and "inflight=1" in text

    def test_second_frame_shows_rate(self):
        previous = serve_registry(requests=4).snapshot()
        current = serve_registry(requests=10).snapshot()
        text = render_dashboard(current, previous, interval=2.0)
        assert "total=10" in text
        assert "rate=3.0/s" in text

    def test_missing_families_degrade_to_na(self):
        text = render_dashboard(MetricsSnapshot())
        assert "requests   total=0" in text
        assert "artifact-hit n/a" in text


class TestWatch:
    def test_finite_iterations_refresh_in_place(self):
        frames = [
            serve_registry(requests=4).snapshot(),
            serve_registry(requests=8).snapshot(),
        ]
        fetches = iter(frames)
        out = io.StringIO()
        watch(lambda: next(fetches), out, interval=0.0, iterations=2)
        text = out.getvalue()
        assert text.count(CLEAR_SCREEN) == 2
        assert "total=4" in text and "total=8" in text
        assert "rate=" in text.rsplit(CLEAR_SCREEN, 1)[1]


class TestFetchMetrics:
    def test_round_trip_against_live_server(self):
        from repro.serve.server import TuningServer
        from tests.serve.test_server import make_service

        async def scenario():
            async with TuningServer(
                service=make_service(), ledger=False
            ) as server:
                return await asyncio.to_thread(
                    fetch_metrics, "127.0.0.1", server.port
                )

        snapshot = asyncio.run(scenario())
        # The scrape observed itself on the way out of the server.
        assert "repro_serve_inflight_requests" in snapshot.families

    def test_unreachable_server_raises_observability_error(self):
        with pytest.raises(ObservabilityError, match="cannot reach"):
            fetch_metrics("127.0.0.1", 9, timeout=0.5)
