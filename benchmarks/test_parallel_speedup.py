"""Bench: serial vs parallel Monte-Carlo characterization (smoke).

Records serial and parallel wall time (and their ratio) into the bench
JSON via ``benchmark.extra_info``, and asserts the fan-out stays
bit-identical to the serial path.  On single-core runners the parallel
path cannot win; the benchmark documents the overhead instead of
asserting a speedup.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer

#: Worker count for the parallel leg (capped: this is a smoke bench).
JOBS = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2


def _characterize(characterizer, specs, n_workers):
    return characterizer.statistical_library(
        specs, n_samples=30, seed=7, n_workers=n_workers, use_cache=False
    )


def test_parallel_speedup(benchmark):
    specs = build_catalog()[:120]
    characterizer = Characterizer()

    start = time.perf_counter()
    serial = _characterize(characterizer, specs, n_workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _characterize(characterizer, specs, n_workers=JOBS)
    parallel_s = time.perf_counter() - start

    benchmark.extra_info["n_cells"] = len(specs)
    benchmark.extra_info["n_workers"] = JOBS
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["serial_s"] = round(serial_s, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 4)
    benchmark.extra_info["speedup"] = round(serial_s / parallel_s, 3)
    print(
        f"\nserial {serial_s:.2f}s  parallel({JOBS}) {parallel_s:.2f}s  "
        f"speedup {serial_s / parallel_s:.2f}x on {os.cpu_count()} CPUs"
    )

    # correctness smoke: the fan-out must be bit-identical
    for name in (specs[0].name, specs[-1].name):
        arc_serial = serial.cell(name).output_pins()[0].timing[0]
        arc_parallel = parallel.cell(name).output_pins()[0].timing[0]
        assert np.array_equal(arc_serial.cell_rise.values, arc_parallel.cell_rise.values)
        assert np.array_equal(arc_serial.sigma_fall.values, arc_parallel.sigma_fall.values)

    # timed leg for the bench JSON: one parallel characterization
    benchmark.pedantic(
        _characterize, args=(characterizer, specs, JOBS), rounds=1, iterations=1
    )
