"""Technology parameters and PVT corners."""

import pytest

from repro.errors import VariationError
from repro.variation.process import (
    CORNERS,
    Corner,
    TechnologyParams,
    corner_by_name,
    fast_corner,
    slow_corner,
    typical_corner,
)


class TestTechnologyParams:
    def test_overdrive_nominal(self):
        tech = TechnologyParams()
        expected = (tech.vdd - tech.vth) ** tech.alpha
        assert tech.overdrive() == pytest.approx(expected)

    def test_overdrive_shifts_with_dvth(self):
        tech = TechnologyParams()
        assert tech.overdrive(0.05) < tech.overdrive() < tech.overdrive(-0.05)

    def test_overdrive_guards_against_cutoff(self):
        tech = TechnologyParams()
        with pytest.raises(VariationError):
            tech.overdrive(tech.vdd - tech.vth)

    def test_units_give_ns_from_kohm_pf(self):
        # R (kOhm) * C (pF) must be ns: 10 kOhm * 0.001 pF = 10 ps
        assert 10.0 * 0.001 == pytest.approx(0.01)


class TestCorners:
    def test_typical_is_nominal(self):
        tech = TechnologyParams()
        shifted = typical_corner().apply(tech)
        assert shifted.vth == pytest.approx(tech.vth)
        assert shifted.vdd == pytest.approx(tech.vdd)
        assert shifted.channel_length == pytest.approx(tech.channel_length)

    def test_slow_corner_raises_vth_and_length(self):
        tech = TechnologyParams()
        slow = slow_corner().apply(tech)
        assert slow.vth > tech.vth
        assert slow.channel_length > tech.channel_length
        assert slow.vdd < tech.vdd

    def test_fast_corner_lowers_vth_and_length(self):
        tech = TechnologyParams()
        fast = fast_corner().apply(tech)
        assert fast.vth < tech.vth
        assert fast.channel_length < tech.channel_length
        assert fast.vdd > tech.vdd

    def test_three_canonical_corners(self):
        assert set(CORNERS) == {"fast", "typical", "slow"}

    def test_corner_lookup(self):
        assert corner_by_name("slow").name.startswith("SS")

    def test_unknown_corner_raises(self):
        with pytest.raises(VariationError):
            corner_by_name("nominal")

    def test_corner_is_immutable_application(self):
        tech = TechnologyParams()
        slow_corner().apply(tech)
        assert tech.vth == TechnologyParams().vth

    def test_custom_corner_resistance_derate(self):
        tech = TechnologyParams()
        hot = Corner(name="HOT", resistance_derate=1.25).apply(tech)
        assert hot.k_res == pytest.approx(tech.k_res * 1.25)
