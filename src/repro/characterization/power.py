"""Power model: switching energy and leakage of catalog cells.

The paper's library files "also contain information about the power
consumption of the cell" (Sec. II) and its local-variation metric
"can also be adjusted to measure the influence of local variation on
other properties, such as transition power" (Sec. III).  This module
provides that other property:

* **switching energy** per output transition (pJ), NLDM-style over the
  same slew x load grid as delay::

      E = 0.5 * (C_load + C_par + C_internal) * vdd^2      (capacitive)
        + k_sc * slew * W_drive * (vdd - vth - dvth)^alpha (short-circuit)

  The short-circuit term carries the vth dependence, so Monte-Carlo
  sampling yields per-entry energy sigmas exactly like delay sigmas —
  the input the power-targeted tuning variant consumes.

* **leakage** (uW) with its exponential vth sensitivity,
  ``I = i0 * W * exp(-(vth + dvth) / v_slope)`` — under vth mismatch
  the leakage of a die is log-normally distributed, reproduced by
  :func:`leakage_statistics`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.cells.catalog import CellSpec
from repro.characterization.devices import CellElectricalView
from repro.errors import CharacterizationError
from repro.variation.process import TechnologyParams

ArrayLike = Union[float, np.ndarray]


class PowerModel:
    """Evaluates per-arc switching energy and cell leakage."""

    def __init__(self, tech: Optional[TechnologyParams] = None):
        self.tech = tech or TechnologyParams()

    def arc_energy(
        self,
        spec: CellSpec,
        output_pin: str,
        rise: bool,
        slews: np.ndarray,
        loads: np.ndarray,
        dvth: ArrayLike = 0.0,
        dbeta: ArrayLike = 0.0,
    ) -> np.ndarray:
        """Energy of one output transition (pJ), broadcast like delay."""
        tech = self.tech
        view = CellElectricalView(spec, tech)
        drive = spec.drive(output_pin)
        slews = np.asarray(slews, dtype=float)
        loads = np.asarray(loads, dtype=float)
        if np.any(slews < 0) or np.any(loads < 0):
            raise CharacterizationError("slew and load must be non-negative")

        width = view.device_width(drive, rise)
        c_internal = tech.c_internal * width * (1.0 + drive.intrinsic_stages)
        capacitive = 0.5 * (loads + view.parasitic_cap(drive) + c_internal) * tech.vdd**2

        headroom = tech.vdd - (tech.vth + np.asarray(dvth, dtype=float))
        if np.any(headroom <= 0.05):
            raise CharacterizationError("threshold variation leaves no overdrive")
        overdrive = np.power(headroom, tech.alpha)
        short_circuit = (
            tech.k_shortcircuit
            * slews
            * width
            * overdrive
            * (1.0 + np.asarray(dbeta, dtype=float))
        )
        return np.asarray(capacitive + short_circuit)

    def cell_leakage(self, spec: CellSpec, dvth: ArrayLike = 0.0) -> np.ndarray:
        """Static leakage of the cell (uW), exponential in vth."""
        tech = self.tech
        view = CellElectricalView(spec, tech)
        total_width = 0.0
        for pin_name in spec.function.output_pins:
            drive = spec.drive(pin_name)
            total_width += view.device_width(drive, rise=True)
            total_width += view.device_width(drive, rise=False)
        vth_eff = tech.vth + np.asarray(dvth, dtype=float)
        current = tech.i_leak0 * total_width * np.exp(-vth_eff / tech.v_leak_slope)
        return np.asarray(current * tech.vdd)


def leakage_statistics(
    spec: CellSpec,
    sigma_vth: float,
    n_samples: int = 4000,
    seed: int = 0,
    tech: Optional[TechnologyParams] = None,
) -> Tuple[float, float, float]:
    """Monte-Carlo leakage under vth mismatch: (mean, sigma, skew).

    Leakage is exp(-vth/v_slope), so a normal vth spread produces a
    log-normal leakage distribution — mean above nominal, positive
    skew; the classic reason leakage yield is asymmetric.
    """
    if sigma_vth < 0:
        raise CharacterizationError("sigma_vth must be non-negative")
    model = PowerModel(tech)
    rng = np.random.default_rng(seed)
    samples = model.cell_leakage(spec, dvth=rng.normal(0.0, sigma_vth, n_samples))
    mean = float(samples.mean())
    sigma = float(samples.std(ddof=1))
    centered = samples - mean
    skew = float((centered**3).mean() / (sigma**3)) if sigma > 0 else 0.0
    return mean, sigma, skew
