"""In-flight request coalescing keyed on content fingerprints.

The service's dedup layer for the *time* dimension: the artifact store
already collapses identical work across runs (content-addressed
artifacts), and the :class:`RequestCoalescer` collapses identical work
across *concurrent* requests — N clients asking for the same chained
stage fingerprint share one computation and all await its single
future.  One computation, N waiters; a burst of identical cold
requests performs exactly one synthesis pass.

Keys are the chained stage fingerprints of the request (see
:func:`repro.sweep.driver.point_keys`), so "identical" means what it
means everywhere else in the pipeline: same statistical library, same
design, same method/parameter, same clock and constraints.  Two
requests that differ anywhere upstream get different keys and never
share.

The coalescer is event-loop-local state: all bookkeeping happens on
the loop thread (handlers ``await`` it before any executor hop), so no
locks are needed.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

from repro.observe.catalog import SERVE_COALESCE


class RequestCoalescer:
    """Share one in-flight computation among identical requests.

    :meth:`run` either starts ``compute()`` as the *leader* for a key
    or, when an identical computation is already in flight, awaits the
    leader's task as a *follower*.  Leaders and followers alike receive
    the computation's result (or its exception); the in-flight entry is
    removed the moment the task settles, so a later identical request
    starts fresh (by then the artifact store is warm and the
    computation is cheap).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Task[Any]"] = {}
        #: Computations started (leaders).
        self.started = 0
        #: Requests served by an existing in-flight computation.
        self.coalesced = 0

    @property
    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._inflight)

    async def run(
        self, key: str, compute: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Run (or join) the computation for ``key``.

        Returns ``(result, joined)`` where ``joined`` is ``True`` when
        this request coalesced onto an already-running computation.  A
        follower is shielded from the leader's cancellation scope: if
        the leader's client disconnects, the computation still
        completes and every follower gets its result.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            SERVE_COALESCE.labels(role="follower").inc()
            return await asyncio.shield(existing), True
        task = asyncio.ensure_future(compute())
        self._inflight[key] = task
        self.started += 1
        SERVE_COALESCE.labels(role="leader").inc()
        task.add_done_callback(lambda _done: self._inflight.pop(key, None))
        try:
            return await asyncio.shield(task), False
        except asyncio.CancelledError:
            # The *waiter* was cancelled; the shared computation keeps
            # running for any followers.  Nothing to clean up here —
            # the done callback owns the in-flight entry.
            raise
