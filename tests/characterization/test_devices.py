"""Device-level electrical view of catalog cells."""

import pytest

from repro.cells.catalog import build_catalog, spec_by_name
from repro.characterization.devices import CellElectricalView, network_geometry
from repro.variation.process import TechnologyParams


@pytest.fixture(scope="module")
def specs():
    return build_catalog(families=["INV", "ND4", "NR4", "ADDF", "MUX2", "BUF"])


@pytest.fixture(scope="module")
def tech():
    return TechnologyParams()


class TestWidths:
    def test_width_scales_with_strength(self, specs, tech):
        inv1 = CellElectricalView(spec_by_name(specs, "INV_1"), tech)
        inv8 = CellElectricalView(spec_by_name(specs, "INV_8"), tech)
        drive1 = spec_by_name(specs, "INV_1").drive("Z")
        drive8 = spec_by_name(specs, "INV_8").drive("Z")
        assert inv8.device_width(drive8, rise=False) == pytest.approx(
            8 * inv1.device_width(drive1, rise=False)
        )

    def test_stacked_devices_drawn_wider(self, specs, tech):
        inv = CellElectricalView(spec_by_name(specs, "INV_2"), tech)
        nd4 = CellElectricalView(spec_by_name(specs, "ND4_2"), tech)
        w_inv = inv.device_width(spec_by_name(specs, "INV_2").drive("Z"), rise=False)
        w_nd4 = nd4.device_width(spec_by_name(specs, "ND4_2").drive("Z"), rise=False)
        # 4-stack at 0.6 compensation: 1 + 0.6*3 = 2.8x wider
        assert w_nd4 == pytest.approx(2.8 * w_inv)

    def test_pmos_wider_than_nmos(self, specs, tech):
        view = CellElectricalView(spec_by_name(specs, "INV_1"), tech)
        drive = spec_by_name(specs, "INV_1").drive("Z")
        assert view.device_width(drive, rise=True) > view.device_width(drive, rise=False)


class TestCapacitances:
    def test_parasitic_scales_with_strength(self, specs, tech):
        v1 = CellElectricalView(spec_by_name(specs, "INV_1"), tech)
        v8 = CellElectricalView(spec_by_name(specs, "INV_8"), tech)
        d = spec_by_name(specs, "INV_1").drive("Z")
        d8 = spec_by_name(specs, "INV_8").drive("Z")
        assert v8.parasitic_cap(d8) == pytest.approx(8 * v1.parasitic_cap(d))

    def test_input_cap_linear_for_single_stage(self, specs, tech):
        v1 = CellElectricalView(spec_by_name(specs, "INV_1"), tech)
        v8 = CellElectricalView(spec_by_name(specs, "INV_8"), tech)
        assert v8.input_capacitance("A") == pytest.approx(
            8 * v1.input_capacitance("A")
        )

    def test_input_cap_saturates_for_buffered_cells(self, specs, tech):
        """Complex cells decouple input devices from the output stage:
        upsizing an ADDF 16x does not multiply its input load 16x."""
        v1 = CellElectricalView(spec_by_name(specs, "ADDF_1"), tech)
        v16 = CellElectricalView(spec_by_name(specs, "ADDF_16"), tech)
        ratio = v16.input_capacitance("A") / v1.input_capacitance("A")
        assert ratio < 8

    def test_cap_factor_applied(self, specs, tech):
        mux = CellElectricalView(spec_by_name(specs, "MUX2_2"), tech)
        assert mux.input_capacitance("S") > mux.input_capacitance("D0")


class TestGeometry:
    def test_network_geometry_matches_view(self, specs, tech):
        spec = spec_by_name(specs, "NR4_2")
        geometry = network_geometry(tech, spec, spec.drive("Z"), rise=True)
        view = CellElectricalView(spec, tech)
        assert geometry.width == pytest.approx(
            view.device_width(spec.drive("Z"), rise=True)
        )
        assert geometry.stack == 4
        assert geometry.length == tech.channel_length

    def test_internal_strength_scaled_down(self, specs, tech):
        view = CellElectricalView(spec_by_name(specs, "ADDF_16"), tech)
        assert view.internal_strength() == pytest.approx(8.0)
        weak = CellElectricalView(spec_by_name(specs, "ADDF_1"), tech)
        assert weak.internal_strength() == 1.0
