"""Typed, versioned request/response schema of the tuning service.

The wire format is deliberately boring: every message is one JSON
object carrying ``{"schema": 1, "kind": "<kind>", ...}``.  Requests come
in three kinds — :class:`TuneRequest` (one baseline-vs-tuned comparison
point), :class:`SweepRequest` (a design x method x parameter x clock
grid) and :class:`StatusRequest` (server introspection) — and responses
mirror them (:class:`TuneResponse`, :class:`SweepResponse`,
:class:`StatusResponse`, :class:`ErrorResponse`).

Validation is **strict** and maps onto :mod:`repro.errors`:

* a payload that is not an object, names an unknown ``schema`` version
  or ``kind``, misses a field, mistypes one, or carries an
  unrecognized extra field raises
  :class:`~repro.errors.RequestError`;
* *name* resolution (an unknown tuning method or design-family member)
  is left to the handlers, where :class:`~repro.errors.TuningError` /
  :class:`~repro.errors.ConfigError` carry the available choices.

The server never serializes a traceback: any failure is rendered
through :func:`error_response` as a structured payload whose ``type``
is the :class:`~repro.errors.ReproError` subclass name, and
:func:`error_from_payload` rebuilds the matching exception client-side,
so a caller catches ``TuningError`` from a remote server exactly as it
would from the in-process library.

Bump :data:`SCHEMA_VERSION` whenever a message's meaning or layout
changes; both ends reject versions they do not speak.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type, Union

from repro.errors import ReproError, RequestError

#: Wire-format version folded into every request and response.
SCHEMA_VERSION = 1

#: The request kinds the service speaks, in documentation order.
REQUEST_KINDS: Tuple[str, ...] = ("tune", "sweep", "status")


# ----------------------------------------------------------------------
# Strict payload access
# ----------------------------------------------------------------------


def _type_name(types: Union[type, Tuple[type, ...]]) -> str:
    """Human-readable name of an expected type (or alternatives)."""
    if isinstance(types, tuple):
        return " or ".join(t.__name__ for t in types)
    return types.__name__


def _require(payload: Dict[str, Any], name: str, types, kind: str) -> Any:
    """A required field of ``payload``, strictly typed.

    ``bool`` is rejected where a number is expected — JSON ``true`` is
    not a parameter value, however Python's bool/int subtyping feels
    about it.
    """
    if name not in payload:
        raise RequestError(f"{kind} request misses required field {name!r}")
    value = payload[name]
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise RequestError(
            f"{kind} request field {name!r} must be {_type_name(types)}, "
            f"got a boolean"
        )
    if not isinstance(value, types):
        raise RequestError(
            f"{kind} request field {name!r} must be {_type_name(types)}, "
            f"got {type(value).__name__}"
        )
    return value


def _reject_unknown(
    payload: Dict[str, Any], allowed: Tuple[str, ...], kind: str
) -> None:
    """Strictness: an extra field is an error, not a silent no-op."""
    unknown = sorted(set(payload) - set(allowed) - {"schema", "kind"})
    if unknown:
        raise RequestError(
            f"{kind} request carries unknown fields {unknown} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _number_list(value: Any, name: str, kind: str) -> Tuple[float, ...]:
    """A JSON array of numbers as a float tuple (strictly typed)."""
    if not isinstance(value, list) or not value:
        raise RequestError(
            f"{kind} request field {name!r} must be a non-empty array "
            f"of numbers"
        )
    out: List[float] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise RequestError(
                f"{kind} request field {name!r} must contain only "
                f"numbers, got {type(item).__name__}"
            )
        out.append(float(item))
    return tuple(out)


def _string_list(value: Any, name: str, kind: str) -> Tuple[str, ...]:
    """A JSON array of strings as a str tuple (strictly typed)."""
    if not isinstance(value, list) or not value:
        raise RequestError(
            f"{kind} request field {name!r} must be a non-empty array "
            f"of strings"
        )
    for item in value:
        if not isinstance(item, str):
            raise RequestError(
                f"{kind} request field {name!r} must contain only "
                f"strings, got {type(item).__name__}"
            )
    return tuple(value)


def _check_envelope(payload: Any) -> Dict[str, Any]:
    """The shared envelope checks: an object, at this schema version."""
    if not isinstance(payload, dict):
        raise RequestError(
            f"request payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    version = payload.get("schema")
    if version != SCHEMA_VERSION:
        raise RequestError(
            f"unsupported schema version {version!r} "
            f"(this server speaks schema {SCHEMA_VERSION})"
        )
    return payload


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TuneRequest:
    """One baseline-vs-tuned evaluation point.

    ``scale`` optionally pins the flow scale for this request
    (``tiny`` / ``quick`` / ``paper``); left ``None``, the server's own
    configuration — itself resolved through
    :meth:`repro.flow.experiment.FlowConfig.from_env` — applies.
    """

    kind: ClassVar[str] = "tune"

    method: str
    parameter: float
    clock_period: float
    design: str = "microcontroller"
    scale: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.method:
            raise RequestError("tune request needs a non-empty method name")
        if not self.design:
            raise RequestError("tune request needs a non-empty design name")
        if not self.clock_period > 0:
            raise RequestError(
                f"tune request clock_period must be > 0 ns, "
                f"got {self.clock_period!r}"
            )

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the request."""
        payload: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "method": self.method,
            "parameter": self.parameter,
            "clock_period": self.clock_period,
            "design": self.design,
        }
        if self.scale is not None:
            payload["scale"] = self.scale
        return payload

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "TuneRequest":
        """Strictly validate and rebuild a request payload."""
        _reject_unknown(
            payload,
            ("method", "parameter", "clock_period", "design", "scale"),
            "tune",
        )
        scale = payload.get("scale")
        if scale is not None and not isinstance(scale, str):
            raise RequestError(
                f"tune request field 'scale' must be str, "
                f"got {type(scale).__name__}"
            )
        return TuneRequest(
            method=_require(payload, "method", str, "tune"),
            parameter=float(
                _require(payload, "parameter", (int, float), "tune")
            ),
            clock_period=float(
                _require(payload, "clock_period", (int, float), "tune")
            ),
            design=(
                _require(payload, "design", str, "tune")
                if "design" in payload
                else "microcontroller"
            ),
            scale=scale,
        )


@dataclass(frozen=True)
class SweepRequest:
    """A ``design x method x parameter x clock`` grid evaluation.

    ``methods=None`` means every registered tuning method and
    ``parameters=None`` each method's Table 2 sweep — the same
    defaulting as :class:`repro.sweep.SweepGrid`, which this request
    resolves into server-side.
    """

    kind: ClassVar[str] = "sweep"

    designs: Tuple[str, ...] = ("microcontroller",)
    methods: Optional[Tuple[str, ...]] = None
    parameters: Optional[Tuple[float, ...]] = None
    clock_periods: Tuple[float, ...] = (3.0,)
    scale: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.designs:
            raise RequestError("sweep request needs at least one design")
        if not self.clock_periods:
            raise RequestError(
                "sweep request needs at least one clock period"
            )
        for period in self.clock_periods:
            if not period > 0:
                raise RequestError(
                    f"sweep request clock periods must be > 0 ns, "
                    f"got {period!r}"
                )

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the request."""
        payload: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "designs": list(self.designs),
            "clock_periods": list(self.clock_periods),
        }
        if self.methods is not None:
            payload["methods"] = list(self.methods)
        if self.parameters is not None:
            payload["parameters"] = list(self.parameters)
        if self.scale is not None:
            payload["scale"] = self.scale
        return payload

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "SweepRequest":
        """Strictly validate and rebuild a request payload."""
        _reject_unknown(
            payload,
            ("designs", "methods", "parameters", "clock_periods", "scale"),
            "sweep",
        )
        scale = payload.get("scale")
        if scale is not None and not isinstance(scale, str):
            raise RequestError(
                f"sweep request field 'scale' must be str, "
                f"got {type(scale).__name__}"
            )
        methods = payload.get("methods")
        parameters = payload.get("parameters")
        return SweepRequest(
            designs=_string_list(
                _require(payload, "designs", list, "sweep"),
                "designs",
                "sweep",
            ),
            methods=(
                None
                if methods is None
                else _string_list(methods, "methods", "sweep")
            ),
            parameters=(
                None
                if parameters is None
                else _number_list(parameters, "parameters", "sweep")
            ),
            clock_periods=_number_list(
                _require(payload, "clock_periods", list, "sweep"),
                "clock_periods",
                "sweep",
            ),
            scale=scale,
        )


@dataclass(frozen=True)
class StatusRequest:
    """Server introspection: uptime, queue depth, outcome counters."""

    kind: ClassVar[str] = "status"

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the request."""
        return {"schema": SCHEMA_VERSION, "kind": self.kind}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "StatusRequest":
        """Strictly validate and rebuild a request payload."""
        _reject_unknown(payload, (), "status")
        return StatusRequest()


#: Any of the three request types.
Request = Union[TuneRequest, SweepRequest, StatusRequest]

_REQUEST_TYPES: Dict[str, Any] = {
    "tune": TuneRequest,
    "sweep": SweepRequest,
    "status": StatusRequest,
}


def parse_request(payload: Any) -> Request:
    """Decode one request payload into its typed request object.

    The single entry point the server parses every body through;
    anything malformed raises :class:`~repro.errors.RequestError` with
    a message precise enough to fix the payload from.
    """
    payload = _check_envelope(payload)
    kind = payload.get("kind")
    if kind not in _REQUEST_TYPES:
        raise RequestError(
            f"unknown request kind {kind!r} "
            f"(use one of {', '.join(REQUEST_KINDS)})"
        )
    request: Request = _REQUEST_TYPES[kind].from_payload(payload)
    return request


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TuneResponse:
    """The served comparison plus how the request was satisfied.

    ``outcome`` is ``warm`` (every chained artifact was already in the
    store), ``computed`` (this request's computation populated it) or
    ``coalesced`` (an identical in-flight request's computation was
    shared).
    """

    kind: ClassVar[str] = "tune.result"

    method: str
    parameter: float
    clock_period: float
    design: str
    baseline_sigma: float
    tuned_sigma: float
    baseline_area: float
    tuned_area: float
    tuned_met: bool
    sigma_reduction: float
    area_increase: float
    outcome: str
    trace_id: str
    wall_ms: float

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the response."""
        payload = {name.name: getattr(self, name.name) for name in fields(self)}
        payload["schema"] = SCHEMA_VERSION
        payload["kind"] = self.kind
        return payload

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "TuneResponse":
        """Rebuild a response stored with :meth:`to_payload`."""
        return TuneResponse(
            **{name.name: payload[name.name] for name in fields(TuneResponse)}
        )


@dataclass(frozen=True)
class SweepResponse:
    """Grid results: one row per point plus the incremental counters."""

    kind: ClassVar[str] = "sweep.result"

    points: Tuple[Dict[str, Any], ...]
    counts: Dict[str, int]
    scheduled: int
    backend: str
    outcome: str
    trace_id: str
    wall_ms: float

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the response."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "points": [dict(point) for point in self.points],
            "counts": dict(self.counts),
            "scheduled": self.scheduled,
            "backend": self.backend,
            "outcome": self.outcome,
            "trace_id": self.trace_id,
            "wall_ms": self.wall_ms,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "SweepResponse":
        """Rebuild a response stored with :meth:`to_payload`."""
        return SweepResponse(
            points=tuple(dict(point) for point in payload["points"]),
            counts={k: int(v) for k, v in payload["counts"].items()},
            scheduled=int(payload["scheduled"]),
            backend=str(payload["backend"]),
            outcome=str(payload["outcome"]),
            trace_id=str(payload["trace_id"]),
            wall_ms=float(payload["wall_ms"]),
        )


@dataclass(frozen=True)
class StatusResponse:
    """Server status snapshot (see :meth:`TuningService.status`)."""

    kind: ClassVar[str] = "status.result"

    status: Dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the response."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "status": dict(self.status),
            "trace_id": self.trace_id,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "StatusResponse":
        """Rebuild a response stored with :meth:`to_payload`."""
        return StatusResponse(
            status=dict(payload["status"]),
            trace_id=str(payload.get("trace_id", "")),
        )


@dataclass(frozen=True)
class ErrorResponse:
    """A failure, structured: error type name, message, trace id."""

    kind: ClassVar[str] = "error"

    error_type: str
    message: str
    trace_id: str = ""

    def to_payload(self) -> Dict[str, Any]:
        """Versioned JSON rendering of the response."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "error": {"type": self.error_type, "message": self.message},
            "trace_id": self.trace_id,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "ErrorResponse":
        """Rebuild a response stored with :meth:`to_payload`."""
        error = payload.get("error")
        if not isinstance(error, dict):
            raise RequestError("error response carries no 'error' object")
        return ErrorResponse(
            error_type=str(error.get("type", "ReproError")),
            message=str(error.get("message", "")),
            trace_id=str(payload.get("trace_id", "")),
        )


#: Any of the four response types.
Response = Union[TuneResponse, SweepResponse, StatusResponse, ErrorResponse]

_RESPONSE_TYPES: Dict[str, Any] = {
    "tune.result": TuneResponse,
    "sweep.result": SweepResponse,
    "status.result": StatusResponse,
    "error": ErrorResponse,
}


def parse_response(payload: Any) -> Response:
    """Decode one response payload into its typed response object."""
    payload = _check_envelope(payload)
    kind = payload.get("kind")
    if kind not in _RESPONSE_TYPES:
        raise RequestError(
            f"unknown response kind {kind!r} "
            f"(use one of {', '.join(sorted(_RESPONSE_TYPES))})"
        )
    try:
        response: Response = _RESPONSE_TYPES[kind].from_payload(payload)
    except (KeyError, TypeError, ValueError) as error:
        raise RequestError(
            f"malformed {kind} response payload: {error}"
        ) from None
    return response


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------


def error_response(error: BaseException, trace_id: str = "") -> ErrorResponse:
    """Render any exception as a structured error response.

    :class:`~repro.errors.ReproError` subclasses keep their class name
    (the client rebuilds the matching type); anything else is folded
    into an opaque ``InternalError`` — the message survives, the
    traceback never crosses the wire.
    """
    if isinstance(error, ReproError):
        return ErrorResponse(
            error_type=type(error).__name__,
            message=str(error),
            trace_id=trace_id,
        )
    return ErrorResponse(
        error_type="InternalError",
        message=f"{type(error).__name__}: {error}",
        trace_id=trace_id,
    )


def error_from_payload(response: ErrorResponse) -> ReproError:
    """Rebuild the typed exception an error response describes.

    The type name is resolved against :mod:`repro.errors` only —
    anything unknown (including ``InternalError``) degrades to the
    :class:`~repro.errors.ServeError` base so a hostile payload can
    never name an arbitrary class.  The originating trace id rides
    along as ``error.trace_id``.
    """
    import repro.errors as errors_module

    candidate: Optional[Type[ReproError]] = getattr(
        errors_module, response.error_type, None
    )
    if not (
        isinstance(candidate, type) and issubclass(candidate, ReproError)
    ):
        from repro.errors import ServeError

        candidate = ServeError
    error = candidate(response.message)
    error.trace_id = response.trace_id  # type: ignore[attr-defined]
    return error
