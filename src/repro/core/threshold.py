"""Threshold extraction (paper Sec. VI.B).

For the slope-bound methods, a sigma threshold is extracted per cell
cluster:

1. build the *maximum equivalent LUT* — per-entry maximum over every
   sigma table of every cell in the cluster;
2. convert it to slew and load slope tables (eqs. 12-13);
3. binarize each against its slope bound (entries *smaller* than the
   bound become logic one) and AND the two binary tables;
4. find the largest all-ones rectangle (Algorithm 1) and read the
   sigma at the rectangle coordinate furthest from the origin.

The sigma-ceiling method skips all of this: its bound *is* the
threshold ("the sigma ceiling is used as threshold on its own").

LUTs are combined **by index position**, as the paper's equations
operate on table indices; all catalog LUTs share one grid shape, and
cells of equal drive strength share physical axes as well.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.core.binary_lut import binarize_below, combine_and
from repro.core.rectangle import Rectangle, largest_rectangle
from repro.core.slope import load_slope_table, slew_slope_table
from repro.errors import TuningError
from repro.liberty.model import Cell, Lut


def equivalent_sigma_lut(cells: Iterable[Cell]) -> Lut:
    """Maximum equivalent sigma LUT of a cluster, combined by entry.

    The returned LUT reuses the first table's axes; only the index
    structure is meaningful for mixed-strength clusters.
    """
    tables: List[Lut] = []
    for cell in cells:
        for _pin, arc in cell.arcs():
            tables.extend(arc.sigma_tables())
    if not tables:
        raise TuningError(
            "cluster has no sigma tables — threshold extraction needs a "
            "statistical library (see repro.statlib)"
        )
    first = tables[0]
    for table in tables[1:]:
        if table.shape != first.shape:
            raise TuningError(
                f"cluster mixes LUT shapes {table.shape} vs {first.shape}"
            )
    stacked = np.stack([t.values for t in tables])
    return first.with_values(stacked.max(axis=0))


def slope_binary_lut(
    equivalent: Lut, load_bound: float, slew_bound: float
) -> np.ndarray:
    """Binary LUT of acceptably flat entries (steps 2-3 above)."""
    if load_bound <= 0 or slew_bound <= 0:
        raise TuningError("slope bounds must be positive")
    slew_binary = binarize_below(slew_slope_table(equivalent.values), slew_bound)
    load_binary = binarize_below(load_slope_table(equivalent.values), load_bound)
    return combine_and(slew_binary, load_binary)


def extract_slope_threshold(
    cells: Iterable[Cell], load_bound: float, slew_bound: float
) -> Tuple[float, Rectangle]:
    """Extract the cluster's sigma threshold (steps 1-4 above).

    Returns the threshold and the flat-region rectangle it came from.
    The origin entry of both slope tables is zero by construction, so a
    rectangle always exists.
    """
    equivalent = equivalent_sigma_lut(cells)
    binary = slope_binary_lut(equivalent, load_bound, slew_bound)
    rectangle = largest_rectangle(binary)
    if rectangle is None:  # pragma: no cover - origin is always flat
        raise TuningError("slope binary LUT has no flat region")
    row, col = rectangle.far_corner
    return float(equivalent.values[row, col]), rectangle


def ceiling_threshold(ceiling: float) -> float:
    """The sigma-ceiling method's threshold: the ceiling itself."""
    if ceiling <= 0:
        raise TuningError("sigma ceiling must be positive")
    return float(ceiling)


def threshold_for_cluster(
    cells: Iterable[Cell],
    kind: str,
    load_bound: float,
    slew_bound: float,
    sigma_ceiling: float,
) -> float:
    """Dispatch threshold extraction for one cluster.

    ``kind`` is one of ``load_slope``/``slew_slope``/``sigma_ceiling``;
    the two bounds not being swept stay at their Table 2 defaults.
    """
    if kind == "sigma_ceiling":
        return ceiling_threshold(sigma_ceiling)
    if kind in ("load_slope", "slew_slope"):
        threshold, _rect = extract_slope_threshold(cells, load_bound, slew_bound)
        # The ceiling default (100 ns) never binds, but honor it anyway
        # so custom combined sweeps behave sensibly.
        return min(threshold, sigma_ceiling)
    raise TuningError(f"unknown threshold kind {kind!r}")
