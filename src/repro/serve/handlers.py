"""Request handling: typed requests in, typed responses out.

:class:`TuningService` is the transport-free core of the tuning
service — :mod:`repro.serve.server` wraps it in HTTP, the tests drive
it directly on an event loop.  Each request flows through the same
stations:

1. **Resolve** — the request becomes a
   :class:`~repro.flow.experiment.FlowConfig` via
   :meth:`~repro.flow.experiment.FlowConfig.from_env`, with request
   fields (scale, design) taking precedence over the server's own
   config, which took precedence over the environment at startup.
2. **Fingerprint** — the point's chained stage fingerprints come from
   :func:`repro.sweep.driver.point_keys`, byte-identical to what the
   flow itself would compute, so the artifact store doubles as the
   service's warm/cold oracle.
3. **Coalesce** — cold work keys into the
   :class:`~repro.serve.coalesce.RequestCoalescer` on the tuned chain's
   terminal fingerprint; N identical in-flight requests share one
   computation.
4. **Dispatch** — cold leaders go through the
   :class:`~repro.parallel.backends.AsyncDispatcher` onto the
   configured :class:`~repro.parallel.backends.ExecutorBackend`, with
   bounded backpressure (a full queue raises
   :class:`~repro.errors.ServerBusyError` → HTTP 429).  Warm hits skip
   the dispatcher entirely and stream straight from the store through
   a per-config serial collection flow.

Every handler is ``async`` but never blocks the event loop: anything
that touches the pipeline runs in a worker thread or on the backend.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError, RequestError
from repro.flow.experiment import FlowConfig, TuningFlow
from repro.flow.metrics import TuningComparison
from repro.flow.pipeline import _sweep_worker
from repro.parallel.artifacts import fingerprint
from repro.parallel.backends import AsyncDispatcher, resolve_backend
from repro.serve.schema import (
    SCHEMA_VERSION,
    Request,
    Response,
    StatusRequest,
    StatusResponse,
    SweepRequest,
    SweepResponse,
    TuneRequest,
    TuneResponse,
)
from repro.serve.coalesce import RequestCoalescer

#: A point-evaluation hook: ``(config, (clock, method, parameter)) ->
#: TuningComparison``.  The default is the sweep worker; tests inject
#: a stub to exercise the service without synthesis.
EvaluateHook = Callable[[FlowConfig, Tuple[float, Optional[str], float]], Any]


def default_evaluate(
    config: FlowConfig, point: Tuple[float, Optional[str], float]
) -> TuningComparison:
    """Evaluate one sweep point in a fresh serial flow (the default).

    Module-level and picklable so the process/queue backends can ship
    it to workers (lint rule PROC002).
    """
    return _sweep_worker(config, point)


class TuningService:
    """The transport-free tuning service core.

    One instance owns the dispatcher (bounded worker-pool access), the
    coalescer (in-flight dedup), a memoized warm collection flow per
    distinct config, and the request counters the status endpoint
    reports.  All mutable state lives on the event-loop thread; the
    only cross-thread traffic is the work itself.
    """

    def __init__(
        self,
        config: Optional[FlowConfig] = None,
        max_pending: int = 8,
        evaluate: Optional[EvaluateHook] = None,
    ):
        """Build a service around ``config`` (default: from the env).

        ``max_pending`` bounds concurrent backend submissions — the
        backpressure knob.  ``evaluate`` overrides how a cold point is
        computed (tests inject stubs; the default runs the real sweep
        worker).
        """
        self.config = config if config is not None else FlowConfig.from_env()
        if not self.config.cache:
            raise ConfigError(
                "the tuning service streams warm results from the artifact "
                "store; enable the cache (FlowConfig(cache=True))"
            )
        from repro.observe.metrics import set_metrics_enabled

        set_metrics_enabled(self.config.metrics)
        self.backend = resolve_backend(
            self.config.backend, self.config.n_workers
        )
        self.dispatcher = AsyncDispatcher(self.backend, max_pending)
        self.coalescer = RequestCoalescer()
        self._evaluate: EvaluateHook = (
            evaluate if evaluate is not None else default_evaluate
        )
        self._flows: Dict[FlowConfig, TuningFlow] = {}
        self.started_at = time.time()
        #: Requests served, by outcome (``warm`` / ``computed`` /
        #: ``coalesced`` / ``status`` / ``error`` / ``rejected``).
        self.counters: Dict[str, int] = {}

    # -- resolution ---------------------------------------------------

    def request_config(self, request: Request) -> FlowConfig:
        """Resolve a request into the FlowConfig its work runs under.

        Precedence per knob: request field > server config (which beat
        the environment at startup) > default.  A request naming a
        scale re-resolves through :meth:`FlowConfig.from_env` with the
        server's execution knobs carried over explicitly, so two
        requests differing only in scale share the worker pool but not
        the science knobs.  A ``design`` field resolves through the
        design-family registry relative to the config's base design.
        """
        from repro.netlist.generators.family import design_spec

        config = self.config
        scale = getattr(request, "scale", None)
        if scale is not None:
            config = FlowConfig.from_env(
                scale=scale,
                jobs=self.config.n_workers,
                kernel=self.config.kernel,
                backend=self.config.backend,
                cache=self.config.cache,
            )
        design = getattr(request, "design", None)
        if design is not None:
            config = replace(
                config, design=design_spec(design).params(config.design)
            )
        return replace(config, tracer=None)

    def _flow(self, config: FlowConfig) -> TuningFlow:
        """The memoized warm serial collection flow for ``config``.

        Collection flows only ever read artifacts the workers stored,
        so they are normalized to serial single-worker execution — the
        backend knob belongs to the dispatcher, not to reads.
        """
        key = replace(config, n_workers=1, backend="serial", tracer=None)
        flow = self._flows.get(key)
        if flow is None:
            flow = self._flows[key] = TuningFlow(key)
        return flow

    def _count(self, outcome: str) -> None:
        """Bump the per-outcome request counter."""
        self.counters[outcome] = self.counters.get(outcome, 0) + 1

    # -- handlers -----------------------------------------------------

    async def handle(self, request: Request, trace_id: str) -> Response:
        """Dispatch a parsed request to its handler."""
        if isinstance(request, TuneRequest):
            return await self.tune(request, trace_id)
        if isinstance(request, SweepRequest):
            return await self.sweep(request, trace_id)
        if isinstance(request, StatusRequest):
            self._count("status")
            # status() walks the artifact store on disk — keep that
            # off the event loop.
            report = await asyncio.to_thread(self.status)
            return StatusResponse(status=report, trace_id=trace_id)
        raise RequestError(
            f"no handler for request kind {getattr(request, 'kind', '?')!r}"
        )

    async def tune(
        self, request: TuneRequest, trace_id: str
    ) -> TuneResponse:
        """Serve one tuning comparison (baseline vs tuned point).

        Warm points (every chained artifact already stored) stream
        through the collection flow without touching the dispatcher;
        cold points coalesce on the tuned chain's terminal fingerprint
        and dispatch one sweep-worker evaluation for all waiters.
        """
        from repro.core.methods import method_by_name
        from repro.sweep.driver import GridPoint, point_keys

        start = time.perf_counter()
        config = self.request_config(request)
        method = method_by_name(request.method)  # typo -> TuningError (400)
        flow = self._flow(config)
        point = GridPoint(
            request.design, method.name, request.parameter,
            request.clock_period,
        )

        def probe() -> Tuple[str, bool]:
            """Fingerprint the point and check store warmth (thread)."""
            tuning_key, tuned, baseline = point_keys(
                flow.statlib_key,
                flow.design_key,
                method,
                point,
                config.guard_band,
            )
            store = flow._store
            warm = (
                store is not None
                and store.has("tuning", tuning_key)
                and all(store.has(stage, key) for stage, key in tuned)
                and all(store.has(stage, key) for stage, key in baseline)
            )
            return tuned[-1][1], warm

        identity, warm = await asyncio.to_thread(probe)
        task = (point.clock_period, method.name, point.parameter)
        if warm:

            async def collect() -> TuningComparison:
                return await asyncio.to_thread(flow.compare, *task)

            comparison, _ = await self.coalescer.run(
                f"warm:{identity}", collect
            )
            outcome = "warm"
        else:
            worker_config = replace(config, tracer=None)

            async def compute() -> TuningComparison:
                return await self.dispatcher.call(
                    self._evaluate, worker_config, task
                )

            comparison, joined = await self.coalescer.run(
                f"cold:{identity}", compute
            )
            outcome = "coalesced" if joined else "computed"
        self._count(outcome)
        return TuneResponse(
            method=comparison.method,
            parameter=comparison.parameter,
            clock_period=comparison.clock_period,
            design=request.design,
            baseline_sigma=comparison.baseline_sigma,
            tuned_sigma=comparison.tuned_sigma,
            baseline_area=comparison.baseline_area,
            tuned_area=comparison.tuned_area,
            sigma_reduction=comparison.sigma_reduction,
            area_increase=comparison.area_increase,
            tuned_met=comparison.tuned_met,
            outcome=outcome,
            trace_id=trace_id,
            wall_ms=(time.perf_counter() - start) * 1e3,
        )

    async def sweep(
        self, request: SweepRequest, trace_id: str
    ) -> SweepResponse:
        """Serve one incremental grid sweep.

        The whole grid coalesces as a unit (key: grid axes + statlib
        fingerprint + guard band), and the sweep itself — including its
        own store diffing — runs through the dispatcher as a single
        bounded submission.  A fully warm grid reports outcome
        ``warm`` (``scheduled == 0``).
        """
        from repro.sweep.driver import SweepGrid, run_sweep

        start = time.perf_counter()
        config = self.request_config(request)
        grid = SweepGrid(
            designs=request.designs,
            methods=request.methods,
            parameters=request.parameters,
            clock_periods=request.clock_periods,
        )
        grid.points()  # validate designs/methods before dispatch
        flow = self._flow(config)
        statlib_key = await asyncio.to_thread(lambda: flow.statlib_key)
        identity = fingerprint(
            {
                "kind": "sweep",
                "statlib": statlib_key,
                "designs": list(grid.designs),
                "methods": None if grid.methods is None else list(grid.methods),
                "parameters": (
                    None if grid.parameters is None else list(grid.parameters)
                ),
                "clocks": list(grid.clock_periods),
                "guard_band": config.guard_band,
            }
        )

        async def compute() -> Any:
            return await self.dispatcher.call(
                run_sweep, config, grid, self.backend, False
            )

        result, joined = await self.coalescer.run(
            f"sweep:{identity}", compute
        )
        if result.scheduled == 0:
            outcome = "warm"
        else:
            outcome = "coalesced" if joined else "computed"
        self._count(outcome)
        points = tuple(
            {
                "label": item.point.label(),
                "status": item.status,
                "sigma_reduction": item.comparison.sigma_reduction,
                "area_increase": item.comparison.area_increase,
                "tuned_met": item.comparison.tuned_met,
            }
            for item in result.results
        )
        return SweepResponse(
            points=points,
            counts=dict(result.counts),
            scheduled=result.scheduled,
            backend=result.backend,
            outcome=outcome,
            trace_id=trace_id,
            wall_ms=(time.perf_counter() - start) * 1e3,
        )

    # -- introspection ------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the service's health and load."""
        import repro
        from repro.parallel.artifacts import ArtifactStore

        store_stats: Dict[str, Any] = {}
        if self.config.cache:
            stats = ArtifactStore().stats()
            store_stats = {
                "entries": stats.entries,
                "kib": round(stats.total_bytes / 1024, 1),
            }
        return {
            "schema": SCHEMA_VERSION,
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "scale": self.config.scale_name(),
            "backend": self.backend.name,
            "workers": self.backend.n_workers,
            "pending": self.dispatcher.pending,
            "capacity": self.dispatcher.max_pending,
            "inflight": self.coalescer.inflight,
            "coalesced": self.coalescer.coalesced,
            "computations": self.coalescer.started,
            "requests": dict(self.counters),
            "store": store_stats,
        }
