"""Functional simulator semantics."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Netlist
from repro.netlist.simulate import (
    bus_value,
    evaluate_combinational,
    int_to_bus_inputs,
    simulate,
    simulate_sequence,
    step,
)


class TestCombinational:
    def test_missing_input_rejected(self):
        builder = NetlistBuilder("m")
        a = builder.input("a")
        builder.output("y", builder.inv(a))
        with pytest.raises(NetlistError):
            simulate(builder.netlist, {})

    def test_evaluates_through_levels(self):
        builder = NetlistBuilder("levels")
        a, b = builder.input("a"), builder.input("b")
        y = builder.nand(builder.inv(a), builder.or_(a, b))
        builder.output("y", y)
        netlist = builder.netlist
        for av in (False, True):
            for bv in (False, True):
                out = simulate(netlist, {"a": av, "b": bv})
                assert out["y"] == (not ((not av) and (av or bv)))


class TestSequentialSemantics:
    def make_ff(self, family):
        netlist = Netlist("ff")
        netlist.add_input_port("clk")
        netlist.set_clock("clk")
        netlist.add_input_port("d")
        connections = {"D": "d", "CP": "clk", "Q": "q"}
        if "R" in family[3:]:
            netlist.add_input_port("rn")
            connections["RN"] = "rn"
        if "S" in family[3:]:
            netlist.add_input_port("sn")
            connections["SN"] = "sn"
        netlist.add_instance("ff0", family, connections)
        netlist.add_output_port("y", "q")
        return netlist

    def test_dff_samples_d(self):
        netlist = self.make_ff("DFF")
        values, state = step(netlist, {"clk": False, "d": True}, {})
        assert state["q"] is True
        values, state = step(netlist, {"clk": False, "d": False}, state)
        assert values["q"] is True  # old state visible this cycle
        assert state["q"] is False

    def test_dffr_reset_dominates_d(self):
        netlist = self.make_ff("DFFR")
        _values, state = step(netlist, {"clk": 0, "d": 1, "rn": 0}, {"q": True})
        assert state["q"] is False

    def test_dffs_set_forces_one(self):
        netlist = self.make_ff("DFFS")
        _values, state = step(netlist, {"clk": 0, "d": 0, "sn": 0}, {})
        assert state["q"] is True

    def test_dffsr_set_dominates_reset(self):
        netlist = self.make_ff("DFFSR")
        _values, state = step(netlist, {"clk": 0, "d": 0, "rn": 0, "sn": 0}, {})
        assert state["q"] is True

    def test_latch_transparent_when_enabled(self):
        builder = NetlistBuilder("lat")
        builder.clock()
        d, en = builder.input("d"), builder.input("en")
        q = builder.latch(d, en)
        builder.output("y", q)
        netlist = builder.netlist
        observed = simulate_sequence(netlist, [
            {"clk": 0, "d": 1, "en": 1},
            {"clk": 0, "d": 0, "en": 0},  # holds the 1
            {"clk": 0, "d": 0, "en": 1},  # takes the 0
            {"clk": 0, "d": 1, "en": 0},
        ])
        assert [o["y"] for o in observed] == [False, True, True, False]


class TestHelpers:
    def test_bus_value_roundtrip(self):
        inputs = int_to_bus_inputs("x", 6, 45)
        assert bus_value(inputs, [f"x[{i}]" for i in range(6)]) == 45

    def test_int_to_bus_range_check(self):
        with pytest.raises(NetlistError):
            int_to_bus_inputs("x", 4, 16)
        with pytest.raises(NetlistError):
            int_to_bus_inputs("x", 4, -1)

    def test_evaluate_returns_all_nets(self):
        builder = NetlistBuilder("all")
        a = builder.input("a")
        n1 = builder.inv(a)
        builder.output("y", builder.inv(n1))
        values = evaluate_combinational(builder.netlist, {"a": True}, {})
        assert values["a"] is True
        assert values[n1] is False
