"""Tests of the tuning service (:mod:`repro.serve`)."""
