"""Bench: Fig. 7 — library-wide sigma envelope."""

from conftest import show

from repro.experiments import fig07_library_surface


def test_fig07_library_surface(benchmark, context):
    result = benchmark.pedantic(
        fig07_library_surface.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    by_pos = {(r["slew_idx"], r["load_idx"]): r for r in result.rows}
    origin = by_pos[(0, 0)]
    far = by_pos[max(by_pos)]
    # the surface rises away from the origin (paper Fig. 7 landscape)
    assert far["sigma_median"] > origin["sigma_median"]
    assert far["sigma_max"] > origin["sigma_max"]
    # the Table 2 ceilings (0.04..0.01) land inside the sigma range,
    # cutting progressively more of the library
    assert origin["sigma_min"] < 0.01 < 0.04 < far["sigma_max"]
