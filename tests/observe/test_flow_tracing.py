"""End-to-end tracing of the flow: identical results, honest counters.

Two contracts matter at the flow level:

* tracing is *observation only* — a traced run's results are
  bit-identical to an untraced run's (the tier-1 guarantee the CI smoke
  job also exercises);
* the exported counters tell the truth — ``synth.calls`` matches the
  synthesizer's own call counter, and a warm store resolves a run with
  zero ``store.artifact.miss``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.flow.experiment import FlowConfig, TuningFlow
from repro.netlist.generators.microcontroller import MicrocontrollerParams
from repro.observe import (
    JsonlExporter,
    MemorySink,
    Tracer,
    load_trace,
    set_tracer,
)
from repro.synth.synthesizer import (
    reset_synthesis_call_count,
    synthesis_call_count,
)

PERIOD = 4.0
METHOD = "cell_slew_slope"
PARAMETER = 0.03


def _mini_config(**overrides) -> FlowConfig:
    """The miniature flow configuration (seconds per synthesis)."""
    return FlowConfig(
        design=MicrocontrollerParams(
            width=12,
            regfile_bits=2,
            mult_width=6,
            n_timers=1,
            timer_width=6,
            control_gates=250,
            status_width=12,
            n_uarts=1,
            gpio_width=4,
        ),
        n_samples=12,
        **overrides,
    )


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """A fresh, empty artifact store / library cache per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    return tmp_path / "store"


@pytest.fixture(autouse=True)
def _restore_tracer():
    """Never leak an active tracer into other tests."""
    yield
    set_tracer(None)


class TestTracedResultsIdentical:
    """Tracing on vs off must not change a single bit of the results."""

    def test_compare_bit_identical_with_tracing(self, cache_dir):
        """The full baseline-vs-tuned comparison is equal under ``==``
        (dataclass equality over every float) with and without a
        tracer, on cold stores both times."""
        untraced = TuningFlow(_mini_config(cache=False)).compare(
            PERIOD, METHOD, PARAMETER
        )
        set_tracer(None)
        tracer = Tracer(MemorySink())
        traced_flow = TuningFlow(
            dataclasses.replace(_mini_config(cache=False), tracer=tracer)
        )
        traced = traced_flow.compare(PERIOD, METHOD, PARAMETER)
        assert traced == untraced
        assert len(tracer.spans) > 0

    def test_trace_spans_cover_the_stage_chain(self, cache_dir, tmp_path):
        """A traced comparison records the full stage chain, and the
        JSONL file round-trips it."""
        path = tmp_path / "run.jsonl"
        tracer = Tracer(JsonlExporter(path, truncate=True))
        flow = TuningFlow(dataclasses.replace(_mini_config(), tracer=tracer))
        flow.compare(PERIOD, METHOD, PARAMETER)
        tracer.finish()
        trace = load_trace(path)
        names = set(trace.span_names())
        for expected in (
            "stage.catalog",
            "stage.statlib",
            "stage.tuning",
            "stage.synth",
            "stage.paths",
            "stage.stats",
            "characterize.statistical",
            "synth.run",
            "sta.analyze",
        ):
            assert expected in names, f"missing span {expected}"


class TestCounterTruth:
    """Exported counters agree with the modules' own accounting."""

    def test_synth_calls_counter_matches_call_count(self, cache_dir):
        """``synth.calls`` equals the synthesizer's test hook: 2 on a
        cold compare (baseline + tuned), 0 on a warm repeat."""
        tracer = Tracer(MemorySink())
        reset_synthesis_call_count()
        flow = TuningFlow(dataclasses.replace(_mini_config(), tracer=tracer))
        flow.compare(PERIOD, METHOD, PARAMETER)
        assert synthesis_call_count() == 2
        assert tracer.counters()["synth.calls"] == 2
        assert tracer.counters()["characterize.cells"] > 0
        assert tracer.counters()["store.artifact.miss"] > 0

        set_tracer(None)
        warm_tracer = Tracer(MemorySink())
        reset_synthesis_call_count()
        warm_flow = TuningFlow(
            dataclasses.replace(_mini_config(), tracer=warm_tracer)
        )
        warm_flow.compare(PERIOD, METHOD, PARAMETER)
        assert synthesis_call_count() == 0
        assert warm_tracer.counters().get("synth.calls", 0) == 0
        assert warm_tracer.counters().get("store.artifact.miss", 0) == 0
        assert warm_tracer.counters()["store.artifact.hit"] > 0

    def test_warm_run_records_hit_spans(self, cache_dir):
        """Warm stage resolutions still appear in the trace, marked
        ``hit``, so the time tree stays complete."""
        TuningFlow(_mini_config()).compare(PERIOD, METHOD, PARAMETER)
        set_tracer(None)
        tracer = Tracer(MemorySink())
        flow = TuningFlow(dataclasses.replace(_mini_config(), tracer=tracer))
        flow.compare(PERIOD, METHOD, PARAMETER)
        hit_spans = [
            s
            for s in tracer.spans
            if s.name.startswith("stage.") and s.attrs.get("status") == "hit"
        ]
        assert len(hit_spans) > 0


class TestConfigTracer:
    """FlowConfig carries the tracer without breaking its contracts."""

    def test_tracer_excluded_from_equality(self):
        """Two configs differing only in tracer still compare equal
        (the tracer must never leak into cache fingerprints)."""
        config = _mini_config()
        traced = dataclasses.replace(config, tracer=Tracer(MemorySink()))
        assert config == traced

    def test_config_with_tracer_remains_picklable(self, tmp_path):
        """A file-backed tracer doesn't break FlowConfig pickling (the
        sweep fan-out ships configs to worker processes)."""
        import pickle

        tracer = Tracer(JsonlExporter(tmp_path / "t.jsonl"))
        config = dataclasses.replace(_mini_config(), tracer=tracer)
        clone = pickle.loads(pickle.dumps(config))
        assert clone.tracer.trace_id == tracer.trace_id
