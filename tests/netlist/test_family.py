"""The design family: presets, clamps, and the identity anchor."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, NetlistError
from repro.netlist.generators import (
    DESIGN_PRESETS,
    DesignSpec,
    MicrocontrollerParams,
    build_microcontroller,
    design_family,
    design_spec,
)
from repro.netlist.simulate import simulate_sequence


class TestRegistry:
    def test_family_names(self):
        assert design_family() == ("microcontroller", "dsp", "iohub", "sensor")
        assert set(DESIGN_PRESETS) == set(design_family())

    def test_lookup_by_name(self):
        assert design_spec("dsp").name == "dsp"

    def test_unknown_name_fails_loudly(self):
        with pytest.raises(ConfigError, match="unknown design"):
            design_spec("mcu")

    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="pipeline_depth"):
            DesignSpec(name="bad", pipeline_depth=0)
        with pytest.raises(ConfigError, match="width_scale"):
            DesignSpec(name="bad", width_scale=0.0)
        with pytest.raises(ConfigError, match="needs a name"):
            DesignSpec(name="")


class TestParams:
    def test_identity_preset_is_exact(self):
        """The paper's design is the family's anchor — the identity
        spec returns the base parameters unchanged, at every scale."""
        for base in (
            MicrocontrollerParams(),
            MicrocontrollerParams(
                width=12, regfile_bits=2, mult_width=8, n_timers=1,
                timer_width=8, control_gates=400, status_width=16,
                n_uarts=1, gpio_width=4,
            ),
        ):
            assert design_spec("microcontroller").params(base) == base

    def test_clamps_keep_generator_invariants(self):
        """Extreme scales still yield constructible parameters."""
        base = MicrocontrollerParams()
        shrunk = DesignSpec(
            name="extreme", width_scale=0.1, peripheral_scale=0.05,
            fanout_profile=0.01,
        ).params(base)
        assert shrunk.width >= 8
        assert shrunk.mult_width <= shrunk.width
        assert 3 + 3 * shrunk.regfile_bits <= shrunk.width
        assert shrunk.timer_width <= shrunk.width
        assert shrunk.gpio_width <= shrunk.width
        assert shrunk.n_timers >= 1 and shrunk.n_uarts >= 1

    def test_every_preset_builds_a_valid_netlist(self):
        base = MicrocontrollerParams(
            width=12, regfile_bits=2, mult_width=8, n_timers=1,
            timer_width=8, control_gates=400, status_width=16,
            n_uarts=1, gpio_width=4,
        )
        sizes = {}
        for name in design_family():
            netlist = build_microcontroller(design_spec(name).params(base))
            netlist.validate()
            sizes[name] = len(netlist)
        assert len(set(sizes.values())) == len(sizes), sizes

    def test_pipeline_depth_adds_registers(self):
        base = MicrocontrollerParams(
            width=12, regfile_bits=2, mult_width=8, n_timers=1,
            timer_width=8, control_gates=400, status_width=16,
            n_uarts=1, gpio_width=4,
        )
        shallow = build_microcontroller(base)
        from dataclasses import replace

        deep = build_microcontroller(replace(base, pipeline_depth=3))
        assert len(deep) > len(shallow)

    def test_pipeline_depth_validated(self):
        with pytest.raises(NetlistError, match="pipeline_depth"):
            MicrocontrollerParams(pipeline_depth=0)

    def test_deep_pipeline_simulates(self):
        """The extra bus-return stages must not break the design's
        cycle-accurate simulation (registers only delay, never loop)."""
        params = design_spec("dsp").params(
            MicrocontrollerParams(
                width=12, regfile_bits=2, mult_width=8, n_timers=1,
                timer_width=8, control_gates=400, status_width=16,
                n_uarts=1, gpio_width=4,
            )
        )
        netlist = build_microcontroller(params)
        inputs = {port: False for port in netlist.input_ports()}
        inputs["rst_n"] = True
        simulate_sequence(netlist, [dict(inputs)] * 4)


class TestFingerprinting:
    def test_members_content_address_independently(self):
        from repro.flow.pipeline import design_fingerprint

        base = MicrocontrollerParams()
        keys = [
            design_fingerprint(design_spec(name).params(base))
            for name in design_family()
        ]
        assert len(set(keys)) == len(keys)

    def test_pipeline_depth_enters_fingerprint(self):
        from dataclasses import replace

        from repro.flow.pipeline import design_fingerprint

        base = MicrocontrollerParams()
        assert design_fingerprint(base) != design_fingerprint(
            replace(base, pipeline_depth=2)
        )
