"""Property tests pinning the batched kernels to the scalar reference.

:func:`~repro.kernels.lut.batch_interpolate` gathers many tables at
once; these properties hold it bit-for-bit to the scalar
:func:`~repro.liberty.lut.bilinear_interpolate` lookup over random
monotone grids and query points well outside the characterized ranges
(the clamping path on both axes), and pin the group-level
:func:`~repro.kernels.sta.evaluate_table_groups` max-merge to its
scalar twin.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LibertyError
from repro.kernels.lut import LutBatch, batch_interpolate, interpolate_many_scalar
from repro.kernels.sta import evaluate_table_groups
from repro.liberty.lut import bilinear_interpolate, bilinear_interpolate_many
from repro.liberty.model import Lut
from tests.liberty.test_lut_properties import POINTS, luts


@st.composite
def shaped_luts(draw, min_tables=1, max_tables=4):
    """Several random LUTs sharing one (n_slew, n_load) shape — the
    homogeneous-batch shape one characterizer grid produces."""
    n_slew = draw(st.integers(2, 6))
    n_load = draw(st.integers(2, 6))
    n_tables = draw(st.integers(min_tables, max_tables))
    tables = []
    for _ in range(n_tables):
        slew_start = draw(st.floats(0.001, 0.1))
        load_start = draw(st.floats(0.0001, 0.01))
        slew_steps = draw(
            st.lists(st.floats(0.01, 0.5), min_size=n_slew - 1, max_size=n_slew - 1)
        )
        load_steps = draw(
            st.lists(st.floats(0.001, 0.05), min_size=n_load - 1, max_size=n_load - 1)
        )
        slews = slew_start + np.concatenate([[0.0], np.cumsum(slew_steps)])
        loads = load_start + np.concatenate([[0.0], np.cumsum(load_steps)])
        values = np.array(
            draw(
                st.lists(
                    st.lists(st.floats(0.0, 1.0), min_size=n_load, max_size=n_load),
                    min_size=n_slew,
                    max_size=n_slew,
                )
            )
        )
        tables.append(Lut(slews, loads, values + 0.01))
    return tables


class TestBatchInterpolate:
    @given(
        tables=shaped_luts(),
        points=st.lists(POINTS, min_size=1, max_size=16),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_lookup_per_element(self, tables, points, data):
        """Gathered interpolation over mixed table ids equals the
        scalar reference query by query — bit-for-bit, clamping
        included."""
        batch = LutBatch(tables)
        table_ids = data.draw(
            st.lists(
                st.integers(0, len(tables) - 1),
                min_size=len(points),
                max_size=len(points),
            )
        )
        slews = np.array([p[0] for p in points])
        loads = np.array([p[1] for p in points])
        values = batch_interpolate(batch, np.array(table_ids), slews, loads)
        reference = np.array([
            bilinear_interpolate(tables[tid], slew, load)
            for tid, slew, load in zip(table_ids, slews, loads)
        ])
        assert np.array_equal(values, reference)

    @given(tables=shaped_luts())
    @settings(max_examples=60, deadline=None)
    def test_reproduces_every_tables_grid_points(self, tables):
        """On each table's own grid the gather returns the table values
        themselves, exactly."""
        batch = LutBatch(tables)
        for tid, lut in enumerate(tables):
            slews = np.repeat(lut.index_1, lut.index_2.size)
            loads = np.tile(lut.index_2, lut.index_1.size)
            values = batch_interpolate(
                batch, np.full(slews.size, tid), slews, loads
            )
            assert np.array_equal(values, lut.values.ravel())

    def test_len_and_validation(self):
        lut = Lut(np.array([0.01, 0.1]), np.array([0.001, 0.01]),
                  np.array([[1.0, 2.0], [3.0, 4.0]]))
        other = Lut(np.array([0.01, 0.1, 0.5]), np.array([0.001, 0.01]),
                    np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        assert len(LutBatch([lut, lut])) == 2
        with pytest.raises(LibertyError):
            LutBatch([])
        with pytest.raises(LibertyError):
            LutBatch([lut, other])


class TestScalarReference:
    @given(lut=luts(), points=st.lists(POINTS, min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_interpolate_many_scalar_equals_vectorized_lut(self, lut, points):
        """The scalar-kernel reference and the vectorized LUT helper
        are two routes to the same bits."""
        slews = np.array([p[0] for p in points])
        loads = np.array([p[1] for p in points])
        assert np.array_equal(
            interpolate_many_scalar(lut, slews, loads),
            bilinear_interpolate_many(lut, slews, loads),
        )

    @given(lut=luts())
    @settings(max_examples=40, deadline=None)
    def test_broadcasting_preserves_per_element_results(self, lut):
        """An outer-product (column, row) query equals its flattened
        element-by-element evaluation, for both kernels."""
        grid = interpolate_many_scalar(
            lut, lut.index_1[:, None], lut.index_2[None, :]
        )
        assert grid.shape == lut.values.shape
        assert np.array_equal(grid, lut.values)


class TestEvaluateTableGroups:
    @given(
        groups=st.lists(shaped_luts(), min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_vectorized_equals_scalar_per_group(self, groups, data):
        """Whole-level evaluation — homogeneous or heterogeneous table
        shapes, any group sizes — matches the scalar kernel bit-for-bit."""
        queries = [
            data.draw(st.lists(POINTS, min_size=1, max_size=8))
            for _ in groups
        ]
        slews_list = [np.array([p[0] for p in points]) for points in queries]
        loads_list = [np.array([p[1] for p in points]) for points in queries]
        vectorized = evaluate_table_groups(
            groups, slews_list, loads_list, kernel="vectorized"
        )
        scalar = evaluate_table_groups(
            groups, slews_list, loads_list, kernel="scalar"
        )
        assert len(vectorized) == len(scalar) == len(groups)
        for fast, reference in zip(vectorized, scalar):
            assert np.array_equal(fast, reference)

    @given(tables=shaped_luts(min_tables=2))
    @settings(max_examples=40, deadline=None)
    def test_broadcast_queries_keep_their_shape(self, tables):
        """A broadcast (n, 1) x (1, m) query comes back with the full
        (n, m) shape, equal across kernels."""
        slews = tables[0].index_1[:, None]
        loads = tables[0].index_2[None, :]
        # two groups force the stacked-gather path
        (fast_a, fast_b) = evaluate_table_groups(
            [tables, tables[:1]], [slews, slews], [loads, loads],
            kernel="vectorized",
        )
        (ref_a, ref_b) = evaluate_table_groups(
            [tables, tables[:1]], [slews, slews], [loads, loads],
            kernel="scalar",
        )
        expected = (tables[0].index_1.size, tables[0].index_2.size)
        assert fast_a.shape == ref_a.shape == expected
        assert np.array_equal(fast_a, ref_a)
        assert np.array_equal(fast_b, ref_b)

    def test_rejects_empty_group_and_misalignment(self):
        lut = Lut(np.array([0.01, 0.1]), np.array([0.001, 0.01]),
                  np.array([[1.0, 2.0], [3.0, 4.0]]))
        point = np.array([0.05])
        with pytest.raises(LibertyError, match="empty table group"):
            evaluate_table_groups([[lut], []], [point, point], [point, point])
        with pytest.raises(LibertyError, match="must align"):
            evaluate_table_groups([[lut]], [point, point], [point])
