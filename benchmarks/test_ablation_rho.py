"""Ablation: the paper's rho = 0 correlation assumption (Sec. V.B).

The paper argues local variations are uncorrelated and simplifies
eq. (9) to the root-sum-square eq. (10).  This bench sweeps rho on the
real baseline design: the design sigma grows monotonically with the
assumed correlation, and rho=0 is the optimistic end — quantifying how
much the assumption matters.
"""

from conftest import show

from repro.experiments.base import ExperimentResult
from repro.sta.statistics import design_statistics


def test_ablation_rho_sweep(benchmark, context):
    flow = context.flow
    period = context.standard_periods()["medium"]
    run = flow.baseline(period)

    def sweep():
        rows = []
        for rho in (0.0, 0.1, 0.25, 0.5, 1.0):
            stats = design_statistics(
                run.paths, flow.statistical_library, rho=rho
            )
            rows.append({
                "rho": rho,
                "design_sigma_ns": round(stats.sigma, 4),
                "vs_rho0": round(
                    stats.sigma
                    / design_statistics(
                        run.paths, flow.statistical_library, rho=0.0
                    ).sigma,
                    3,
                ),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment_id="ablation-rho",
        title="Design sigma vs assumed cell correlation (eq. 9)",
        rows=rows,
        notes="paper assumes rho=0 (eq. 10); sigma grows monotonically with rho",
    )
    show(result)
    sigmas = [r["design_sigma_ns"] for r in rows]
    assert sigmas == sorted(sigmas)
    assert rows[0]["vs_rho0"] == 1.0
    assert rows[-1]["vs_rho0"] > 1.5  # full correlation is much worse
