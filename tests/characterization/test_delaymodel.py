"""Analytical delay model physics."""

import numpy as np
import pytest

from repro.cells.catalog import build_catalog, spec_by_name
from repro.characterization.delaymodel import GateDelayModel
from repro.errors import CharacterizationError
from repro.variation.process import (
    TechnologyParams,
    fast_corner,
    slow_corner,
    typical_corner,
)


@pytest.fixture(scope="module")
def model():
    return GateDelayModel()


@pytest.fixture(scope="module")
def specs():
    return build_catalog(families=["INV", "ND2", "ND4", "NR4", "ADDF", "DFF"])


class TestMonotonicity:
    def test_delay_grows_with_load(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        delays = [model.arc_delay(inv, "Z", False, 0.05, load) for load in
                  (0.001, 0.002, 0.004, 0.008)]
        assert delays == sorted(delays)

    def test_delay_grows_with_slew(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        delays = [model.arc_delay(inv, "Z", False, slew, 0.002) for slew in
                  (0.01, 0.05, 0.2, 0.8)]
        assert delays == sorted(delays)

    def test_stronger_cell_is_faster_at_same_load(self, model, specs):
        weak = spec_by_name(specs, "INV_1")
        strong = spec_by_name(specs, "INV_8")
        load = 0.005
        assert model.arc_delay(strong, "Z", False, 0.05, load) < model.arc_delay(
            weak, "Z", False, 0.05, load
        )

    def test_transition_grows_with_load(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        tables = model.arc_tables(
            inv, "Z", False, np.array(0.05), np.array([0.001, 0.004, 0.009])
        )
        assert np.all(np.diff(tables.transition) > 0)


class TestTopologyEffects:
    def test_high_fanin_nand_slower_than_inverter(self, model, specs):
        inv = spec_by_name(specs, "INV_2")
        nd4 = spec_by_name(specs, "ND4_2")
        # pull-down through the 4-stack is slower
        assert model.arc_delay(nd4, "Z", False, 0.05, 0.003) > model.arc_delay(
            inv, "Z", False, 0.05, 0.003
        )

    def test_adder_sum_has_intrinsic_delay(self, model, specs):
        addf = spec_by_name(specs, "ADDF_2")
        sum_delay = model.arc_delay(addf, "S", True, 0.05, 0.002)
        carry_delay = model.arc_delay(addf, "CO", True, 0.05, 0.002)
        assert sum_delay > carry_delay

    def test_rise_fall_comparable(self, model, specs):
        """PMOS widening keeps rise within ~2x of fall (merged STA)."""
        inv = spec_by_name(specs, "INV_4")
        rise = model.arc_delay(inv, "Z", True, 0.05, 0.004)
        fall = model.arc_delay(inv, "Z", False, 0.05, 0.004)
        assert 0.5 < rise / fall < 2.0


class TestVariationResponse:
    def test_higher_vth_is_slower(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        nominal = model.arc_delay(inv, "Z", False, 0.05, 0.003)
        slow = model.arc_delay(inv, "Z", False, 0.05, 0.003, dvth=0.03)
        fast = model.arc_delay(inv, "Z", False, 0.05, 0.003, dvth=-0.03)
        assert fast < nominal < slow

    def test_higher_beta_is_faster(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        assert model.arc_delay(inv, "Z", False, 0.05, 0.003, dbeta=0.1) < (
            model.arc_delay(inv, "Z", False, 0.05, 0.003)
        )

    def test_vth_sensitivity_grows_with_load(self, model, specs):
        """The gradient structure the load-slope tuning bound exploits."""
        inv = spec_by_name(specs, "INV_1")
        low = model.vth_sensitivity(inv, "Z", False, 0.05, 0.001)
        high = model.vth_sensitivity(inv, "Z", False, 0.05, 0.009)
        assert high > low > 0

    def test_vth_sensitivity_grows_with_slew(self, model, specs):
        """The gradient structure the slew-slope tuning bound exploits."""
        inv = spec_by_name(specs, "INV_1")
        low = model.vth_sensitivity(inv, "Z", False, 0.02, 0.003)
        high = model.vth_sensitivity(inv, "Z", False, 1.0, 0.003)
        assert high > low

    def test_longer_channel_is_slower(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        assert model.arc_delay(inv, "Z", False, 0.05, 0.003, dlength_rel=0.1) > (
            model.arc_delay(inv, "Z", False, 0.05, 0.003)
        )

    def test_vectorized_variation_axis(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        dvth = np.array([-0.02, 0.0, 0.02])[:, None, None]
        tables = model.arc_tables(
            inv, "Z", False,
            np.array([[0.05], [0.2]]), np.array([0.001, 0.004]),
            dvth=dvth,
        )
        assert tables.delay.shape == (3, 2, 2)
        assert np.all(np.diff(tables.delay, axis=0) > 0)  # slower with vth


class TestCorners:
    def test_slow_corner_slower_fast_corner_faster(self, specs):
        inv = spec_by_name(specs, "INV_2")
        base = TechnologyParams()
        delays = {}
        for name, corner in (
            ("fast", fast_corner()),
            ("typical", typical_corner()),
            ("slow", slow_corner()),
        ):
            delays[name] = GateDelayModel(corner.apply(base)).arc_delay(
                inv, "Z", False, 0.05, 0.003
            )
        assert delays["fast"] < delays["typical"] < delays["slow"]


class TestValidation:
    def test_negative_load_rejected(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        with pytest.raises(CharacterizationError):
            model.arc_delay(inv, "Z", False, 0.05, -0.001)

    def test_excessive_vth_shift_rejected(self, model, specs):
        inv = spec_by_name(specs, "INV_1")
        with pytest.raises(CharacterizationError):
            model.arc_delay(inv, "Z", False, 0.05, 0.003, dvth=0.7)
