"""Scalar-reference characterization kernels.

The vectorized characterization path evaluates one broadcast expression
per arc — a (samples x slew x load) tensor in a single
:meth:`~repro.characterization.delaymodel.GateDelayModel.arc_tables`
call.  The functions here are the honest scalar counterpart: the *same*
surrogate model invoked once per (sample, grid point) with 0-d inputs.

Because NumPy elementwise arithmetic is performed per element with the
same IEEE-754 operations regardless of array shape, the scalar loops
fill a C-contiguous (N, n_slew, n_load) tensor whose every entry — and
therefore every downstream ``mean(axis=0)`` / ``std(axis=0)``
reduction — is bit-identical to the broadcast tensor.  ``tests/kernels``
enforces exactly that.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.cells.catalog import CellSpec
from repro.characterization.delaymodel import ArcTables, GateDelayModel
from repro.characterization.power import PowerModel

ArrayLike = Union[float, np.ndarray]


def _as_sample_vectors(
    *variations: ArrayLike,
) -> Tuple[Tuple[np.ndarray, ...], bool]:
    """Broadcast variation inputs to a common (N,) sample axis.

    Returns the vectors and whether any input actually carried a sample
    axis (scalar-only inputs collapse to N=1 and an unbatched result).
    """
    batched = any(np.ndim(value) > 0 for value in variations)
    vectors = np.broadcast_arrays(
        *[np.atleast_1d(np.asarray(value, dtype=float)) for value in variations]
    )
    return tuple(vectors), batched


def scalar_arc_tables(
    model: GateDelayModel,
    spec: CellSpec,
    output_pin: str,
    rise: bool,
    slew_axis: np.ndarray,
    load_axis: np.ndarray,
    dvth: ArrayLike = 0.0,
    dbeta: ArrayLike = 0.0,
    dlength_rel: ArrayLike = 0.0,
) -> ArcTables:
    """Reference arc tensors: one surrogate call per (sample, point).

    Shapes mirror the broadcast path: (n_slew, n_load) with scalar
    variation, (N, n_slew, n_load) with an (N,)-shaped variation axis.
    """
    (dvth_v, dbeta_v, dlen_v), batched = _as_sample_vectors(
        dvth, dbeta, dlength_rel
    )
    n_samples = dvth_v.shape[0]
    shape = (n_samples, slew_axis.size, load_axis.size)
    delay = np.empty(shape)
    transition = np.empty(shape)
    for k in range(n_samples):
        for i in range(slew_axis.size):
            for j in range(load_axis.size):
                tables = model.arc_tables(
                    spec,
                    output_pin,
                    rise,
                    slews=np.asarray(slew_axis[i]),
                    loads=np.asarray(load_axis[j]),
                    dvth=float(dvth_v[k]),
                    dbeta=float(dbeta_v[k]),
                    dlength_rel=float(dlen_v[k]),
                )
                delay[k, i, j] = tables.delay
                transition[k, i, j] = tables.transition
    if not batched:
        return ArcTables(delay=delay[0], transition=transition[0])
    return ArcTables(delay=delay, transition=transition)


def scalar_arc_energy(
    model: PowerModel,
    spec: CellSpec,
    output_pin: str,
    rise: bool,
    slew_axis: np.ndarray,
    load_axis: np.ndarray,
    dvth: ArrayLike = 0.0,
    dbeta: ArrayLike = 0.0,
) -> np.ndarray:
    """Reference switching-energy tensor, one model call per point."""
    (dvth_v, dbeta_v), batched = _as_sample_vectors(dvth, dbeta)
    n_samples = dvth_v.shape[0]
    energy = np.empty((n_samples, slew_axis.size, load_axis.size))
    for k in range(n_samples):
        for i in range(slew_axis.size):
            for j in range(load_axis.size):
                energy[k, i, j] = model.arc_energy(
                    spec,
                    output_pin,
                    rise,
                    slews=np.asarray(slew_axis[i]),
                    loads=np.asarray(load_axis[j]),
                    dvth=float(dvth_v[k]),
                    dbeta=float(dbeta_v[k]),
                )
    if not batched:
        return np.asarray(energy[0])
    return energy
