"""Nested-span tracing, counters and gauges.

The tracing model is deliberately small — three record kinds cover the
whole flow:

* a **span** is one timed region of work: a name, free-form attributes,
  wall time, CPU time and the peak-RSS growth observed while it ran.
  Spans nest (per thread) and carry ``parent_id`` links, so a trace
  reconstructs the stage tree of a run: experiment -> flow stage ->
  synthesis phase -> STA pass -> per-cell characterization.
* a **counter** is a monotone named total (cells characterized, MC
  samples drawn, sizing iterations, STA node visits, cache hits and
  misses per store).
* a **gauge** is a last-write-wins named value (worker count, design
  size).

A :class:`Tracer` owns all three plus an optional export sink (see
:mod:`repro.observe.export`).  The active tracer is a per-process
global (:func:`get_tracer` / :func:`set_tracer`) defaulting to a
:class:`NullTracer` whose every operation is a no-op — instrumentation
left in the hot path costs one dictionary-free method call when
tracing is off.

Worker processes join a trace through a picklable :class:`TraceHandle`
(file path, trace id, parent span id): the pool entry point calls
:func:`install_worker_tracer` and the worker's spans land in the same
JSONL file under the submitting span, merging the fan-out back into
one tree.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

try:
    import resource

    def _peak_rss_kib() -> int:
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover - non-POSIX platforms

    def _peak_rss_kib() -> int:
        return 0


def _new_trace_id() -> str:
    return os.urandom(8).hex()


@dataclass
class Span:
    """One timed, attributed region of work.

    ``wall``/``cpu``/``rss_delta_kib`` are filled in when the span
    closes; ``start`` is an epoch timestamp so spans from different
    processes interleave correctly in a merged trace.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    pid: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    wall: float = 0.0
    cpu: float = 0.0
    rss_delta_kib: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes after the span opened."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time anomaly or milestone inside the span.

        Events ride along in the span's trace record — the natural
        home for things that happen *during* a stage but are not
        stages themselves: a cache entry found corrupted and healed, a
        retry, a fallback taken.
        """
        record: Dict[str, Any] = {"name": name, "t": time.time()}
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def to_record(self) -> Dict[str, Any]:
        """JSON-serializable rendering (one trace-file line)."""
        record = {
            "type": "span",
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "pid": self.pid,
            "start": self.start,
            "wall": self.wall,
            "cpu": self.cpu,
            "rss_kib": self.rss_delta_kib,
        }
        if self.events:
            record["events"] = self.events
        return record


class _NullSpan(Span):
    """Shared dummy span handed out by :class:`NullTracer`."""

    def set(self, **attrs: Any) -> None:
        """Discard attributes (tracing is off)."""

    def event(self, name: str, **attrs: Any) -> None:
        """Discard the event (tracing is off)."""


_NULL_SPAN = _NullSpan(
    name="null", trace_id="", span_id="", parent_id=None, pid=0
)


class _SpanContext:
    """Context manager closing a span and handing it to its tracer."""

    __slots__ = ("_tracer", "_span", "_t0", "_c0", "_r0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self._r0 = _peak_rss_kib()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.wall = time.perf_counter() - self._t0
        span.cpu = time.process_time() - self._c0
        span.rss_delta_kib = max(0, _peak_rss_kib() - self._r0)
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close_span(span)
        return False


class _NullContext:
    """Reusable no-op context manager for :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


@dataclass(frozen=True)
class TraceHandle:
    """Picklable pointer a worker process uses to join a trace.

    Carries everything a worker needs to merge its spans into the
    parent's trace file: the JSONL path, the trace id and the span id
    the worker's spans should hang under.
    """

    path: str
    trace_id: str
    parent_id: Optional[str]

    def tracer(self) -> "Tracer":
        """Build a tracer appending to the handle's trace file."""
        from repro.observe.export import JsonlExporter

        return Tracer(
            sink=JsonlExporter(self.path),
            trace_id=self.trace_id,
            parent_id=self.parent_id,
        )


class Tracer:
    """Collects spans, counters and gauges; optionally exports them.

    Thread-safe: each thread keeps its own span stack (spans nest per
    thread), counters and the finished-span list are lock-guarded.
    Process-safe export: every finished span is written as one
    appended JSONL line, so tracers in different processes sharing one
    file interleave without tearing (see :mod:`repro.observe.export`).

    Pickling a tracer reduces it to its :class:`TraceHandle` (path,
    trace id, the currently open span as parent), which is how
    ``FlowConfig.tracer`` travels into sweep worker processes.
    """

    #: Tracing is active (the :class:`NullTracer` overrides this).
    enabled = True

    def __init__(
        self,
        sink: Optional[Any] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ):
        self.sink = sink
        self.trace_id = trace_id or _new_trace_id()
        self._root_parent = parent_id
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.spans: List[Span] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Any] = {}
        self._flushed: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def pid(self) -> int:
        """Process id the tracer was created in."""
        return self._pid

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span of this thread (or the root
        parent the tracer was created with)."""
        stack = self._stack()
        return stack[-1].span_id if stack else self._root_parent

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span; use as a context manager.

        The yielded :class:`Span` accepts post-hoc attributes via
        :meth:`Span.set` (e.g. a cache status known only at the end).
        """
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"{self._pid:x}-{next(self._ids):x}",
            parent_id=self.current_span_id(),
            pid=self._pid,
            attrs=dict(attrs),
            start=time.time(),
        )
        self._stack().append(span)
        return _SpanContext(self, span)

    def _close_span(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.spans.append(span)
        if self.sink is not None:
            self.sink.write(span.to_record())

    def record_span(
        self, name: str, wall: float, parent_id: Optional[str] = None, **attrs: Any
    ) -> Span:
        """Record an already-measured region as a span.

        For code that timed itself before tracing existed (e.g. the
        run-manifest stage records): the span closes immediately with
        the given wall time and no CPU/RSS detail.
        """
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"{self._pid:x}-{next(self._ids):x}",
            parent_id=parent_id if parent_id is not None else self.current_span_id(),
            pid=self._pid,
            attrs=dict(attrs),
            start=time.time() - wall,
            wall=wall,
        )
        with self._lock:
            self.spans.append(span)
        if self.sink is not None:
            self.sink.write(span.to_record())
        return span

    # ------------------------------------------------------------------
    # Counters and gauges
    # ------------------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an event to this thread's innermost open span.

        The affordance instrumented code wants when something
        noteworthy happens mid-stage (e.g. the artifact store healing a
        corrupted entry) without knowing which span is open.  With no
        span open the event is dropped — events only make sense in the
        context of the work they interrupted.
        """
        stack = self._stack()
        if stack:
            stack[-1].event(name, **attrs)

    def counters(self) -> Dict[str, float]:
        """Snapshot of all counter totals."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, Any]:
        """Snapshot of all gauges."""
        with self._lock:
            return dict(self._gauges)

    # ------------------------------------------------------------------
    # Export plumbing
    # ------------------------------------------------------------------

    def flush_counters(self) -> None:
        """Export counter growth since the previous flush.

        Counter records in the trace file are *deltas*, so tracers in
        many processes (each flushing at task end) sum correctly when
        the file is read back; the in-memory totals are unaffected.
        """
        if self.sink is None:
            return
        with self._lock:
            delta = {
                name: total - self._flushed.get(name, 0)
                for name, total in self._counters.items()
                if total != self._flushed.get(name, 0)
            }
            gauges = dict(self._gauges)
            self._flushed = dict(self._counters)
        if delta or gauges:
            self.sink.write({
                "type": "counters",
                "trace": self.trace_id,
                "pid": self._pid,
                "counters": delta,
                "gauges": gauges,
            })

    def finish(self) -> None:
        """Flush pending counters and sync the sink."""
        self.flush_counters()
        if self.sink is not None:
            self.sink.flush()

    def handle(self) -> Optional[TraceHandle]:
        """A picklable handle for worker processes, or ``None`` when
        the tracer has no file sink to merge into."""
        path = getattr(self.sink, "path", None)
        if path is None:
            return None
        return TraceHandle(str(path), self.trace_id, self.current_span_id())

    # ------------------------------------------------------------------
    # Pickling (how FlowConfig.tracer reaches sweep workers)
    # ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        path = getattr(self.sink, "path", None)
        return {
            "path": None if path is None else str(path),
            "trace_id": self.trace_id,
            "parent_id": self.current_span_id(),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        sink = None
        if state["path"] is not None:
            from repro.observe.export import JsonlExporter

            sink = JsonlExporter(state["path"])
        self.__init__(
            sink=sink, trace_id=state["trace_id"], parent_id=state["parent_id"]
        )


class NullTracer(Tracer):
    """A tracer whose every operation is a no-op.

    The default active tracer: instrumentation in the hot path reduces
    to one cheap method call, so an untraced run pays (almost) nothing.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullContext:
        """Return the shared no-op context manager."""
        return _NULL_CONTEXT

    def record_span(
        self, name: str, wall: float, parent_id: Optional[str] = None, **attrs: Any
    ) -> "Span":
        """Discard the record; returns the shared dummy span."""
        return _NULL_SPAN

    def add(self, name: str, value: float = 1) -> None:
        """Discard the increment."""

    def gauge(self, name: str, value: Any) -> None:
        """Discard the value."""

    def event(self, name: str, **attrs: Any) -> None:
        """Discard the event."""

    def flush_counters(self) -> None:
        """Nothing to flush."""

    def handle(self) -> Optional[TraceHandle]:
        """Null tracers never merge across processes."""
        return None

    @property
    def pid(self) -> int:
        """Always the current process (null tracers survive forks)."""
        return os.getpid()


#: The process-wide default tracer (all instrumentation is off).
NULL_TRACER = NullTracer()

_ACTIVE: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide active tracer (a no-op tracer by default)."""
    return _ACTIVE


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the active tracer; returns the previous.

    ``None`` restores the no-op default.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


_WORKER_TRACERS: Dict[tuple, Tracer] = {}


def install_worker_tracer(handle: Optional[TraceHandle]) -> Tracer:
    """Activate (and memoize) a tracer for ``handle`` in this process.

    Pool entry points call this first thing: with a handle, the worker
    gets a tracer appending to the parent's trace file (reused across
    tasks landing in the same worker process); with ``None`` — tracing
    off, or an in-memory-only parent tracer — any tracer inherited
    through ``fork`` from the parent process is dropped so worker spans
    can never masquerade as parent spans.
    """
    if handle is None:
        if get_tracer().pid != os.getpid():
            set_tracer(None)
        return get_tracer()
    key = (handle.path, handle.trace_id, handle.parent_id)
    tracer = _WORKER_TRACERS.get(key)
    if tracer is None or tracer.pid != os.getpid():
        tracer = handle.tracer()
        _WORKER_TRACERS[key] = tracer
    set_tracer(tracer)
    return tracer
