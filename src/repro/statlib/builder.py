"""Combine N Monte-Carlo libraries into a statistical library.

This is the literal process of paper Fig. 2: for every cell, every
LUT, every (slew, load) entry, collect the entry's value across the N
libraries, compute mean and standard deviation, and store them at the
same position of the statistical library.

Delay tables produce both a mean table (stored as ``cell_rise`` /
``cell_fall``) and a sigma table (``sigma_rise`` / ``sigma_fall``);
transition tables keep their mean (STA needs mean slews to walk the
design, paper Sec. V).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import LibertyError
from repro.liberty.model import Cell, Library, Lut, Pin, TimingArc
from repro.statlib.stats import RunningStats


def check_library_compatible(reference: Library, other: Library) -> None:
    """Verify two sample libraries are structurally identical.

    The Fig. 2 combine is only meaningful when every library holds the
    same cells with the same arcs over the same grids; this guards
    against mixing characterization runs.
    """
    if set(reference.cells) != set(other.cells):
        missing = set(reference.cells) ^ set(other.cells)
        raise LibertyError(f"sample libraries disagree on cells: {sorted(missing)[:5]}")
    for name, ref_cell in reference.cells.items():
        other_cell = other.cells[name]
        if len(ref_cell.pins) != len(other_cell.pins):
            raise LibertyError(f"cell {name}: pin count mismatch between samples")
        for pin_name, ref_pin in ref_cell.pins.items():
            other_pin = other_cell.pins.get(pin_name)
            if other_pin is None:
                raise LibertyError(f"cell {name}: pin {pin_name} missing in a sample")
            ref_arcs = [a.related_pin for a in ref_pin.timing]
            other_arcs = [a.related_pin for a in other_pin.timing]
            if ref_arcs != other_arcs:
                raise LibertyError(f"cell {name}.{pin_name}: arc mismatch between samples")


def _combine_tables(tables: Sequence[Lut]) -> RunningStats:
    stats = RunningStats()
    first = tables[0]
    for table in tables:
        if not table.same_axes(first):
            raise LibertyError("sample LUTs have mismatched axes")
        stats.update(table.values)
    return stats


def _combine_arc(arcs: Sequence[TimingArc]) -> TimingArc:
    first = arcs[0]
    combined = TimingArc(related_pin=first.related_pin, timing_sense=first.timing_sense)
    for slot, sigma_slot in (("cell_rise", "sigma_rise"), ("cell_fall", "sigma_fall")):
        tables = [getattr(arc, slot) for arc in arcs]
        if any(t is None for t in tables):
            continue
        stats = _combine_tables(tables)
        setattr(combined, slot, tables[0].with_values(stats.mean))
        setattr(combined, sigma_slot, tables[0].with_values(stats.sigma(ddof=1)))
    for slot in ("rise_transition", "fall_transition"):
        tables = [getattr(arc, slot) for arc in arcs]
        if any(t is None for t in tables):
            continue
        stats = _combine_tables(tables)
        setattr(combined, slot, tables[0].with_values(stats.mean))
    return combined


def _combine_cell(cells: Sequence[Cell]) -> Cell:
    first = cells[0]
    combined = Cell(
        name=first.name,
        area=first.area,
        is_sequential=first.is_sequential,
        is_latch=first.is_latch,
        clock_pin=first.clock_pin,
        setup_time=first.setup_time,
    )
    for pin_name, ref_pin in first.pins.items():
        new_pin = Pin(
            name=ref_pin.name,
            direction=ref_pin.direction,
            capacitance=ref_pin.capacitance,
            function=ref_pin.function,
            max_capacitance=ref_pin.max_capacitance,
            is_clock=ref_pin.is_clock,
        )
        for arc_index in range(len(ref_pin.timing)):
            arcs = [cell.pins[pin_name].timing[arc_index] for cell in cells]
            new_pin.timing.append(_combine_arc(arcs))
        combined.add_pin(new_pin)
    return combined


def build_statistical_library(
    libraries: Sequence[Library], name: str = ""
) -> Library:
    """Combine N sample libraries per paper Fig. 2.

    Parameters
    ----------
    libraries:
        At least two structurally identical Monte-Carlo sample
        libraries (paper uses 50).
    name:
        Name of the resulting library; defaults to the first sample's
        name with a ``_stat`` suffix.
    """
    if len(libraries) < 2:
        raise LibertyError("need at least 2 sample libraries to build statistics")
    reference = libraries[0]
    for other in libraries[1:]:
        check_library_compatible(reference, other)

    result = Library(
        name=name or f"{reference.name.rsplit('_mc', 1)[0]}_stat",
        operating_conditions=reference.operating_conditions,
        time_unit=reference.time_unit,
        cap_unit=reference.cap_unit,
    )
    result.is_statistical = True
    for template in reference.templates.values():
        result.add_template(template)
    cell_lists: List[List[Cell]] = [
        [library.cells[cell_name] for library in libraries]
        for cell_name in reference.cells
    ]
    for cells in cell_lists:
        result.add_cell(_combine_cell(cells))
    return result
