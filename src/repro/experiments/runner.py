"""Run every table/figure experiment and collect the results.

:func:`build_context` is the one place that turns execution knobs
(worker count, cache on/off, tracer) into a ready
:class:`~repro.experiments.base.ExperimentContext`; the CLI and the
tests both go through it so the 80-run evaluation sweep and ``python
-m repro run --all`` share the same parallel/caching/tracing
configuration path.

Each experiment runs inside an ``experiment.<id>`` span, so a traced
``run --all`` produces one tree with per-experiment roll-ups; with
``trace_dir`` set, every experiment additionally writes its own JSONL
trace artifact (``<id>.trace.jsonl``) — the shape CI uploads.

Every run also appends one record to the **run ledger** (scientific
metrics, stage aggregates, fingerprints — see
:mod:`repro.observe.ledger`), the longitudinal trail behind ``python
-m repro report`` and ``check``.  Set ``REPRO_LEDGER=off`` (or pass
``ledger=False``) to suppress it, or ``REPRO_LEDGER=<path>`` to
redirect it.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments import (
    base,
    ext_corner_tuning,
    fig01_metric,
    fig02_statlib,
    fig03_bilinear,
    fig04_inv_surfaces,
    fig05_strength6,
    fig06_rectangle,
    fig07_library_surface,
    fig08_period_area,
    fig09_cell_usage,
    fig10_method_comparison,
    fig11_tradeoff,
    fig12_path_depth,
    fig13_sigma_vs_depth,
    fig14_mean_3sigma,
    fig15_corners,
    fig16_local_share,
    table1_clock_periods,
    table2_parameters,
    table3_winning_params,
)
from repro.experiments.base import ExperimentContext, ExperimentResult

#: Experiment id -> run() callable, in paper order.
ALL_EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "fig01": fig01_metric.run,
    "fig02": fig02_statlib.run,
    "fig03": fig03_bilinear.run,
    "fig04": fig04_inv_surfaces.run,
    "fig05": fig05_strength6.run,
    "fig06": fig06_rectangle.run,
    "fig07": fig07_library_surface.run,
    "table1": table1_clock_periods.run,
    "fig08": fig08_period_area.run,
    "table2": table2_parameters.run,
    "fig09": fig09_cell_usage.run,
    "fig10": fig10_method_comparison.run,
    "table3": table3_winning_params.run,
    "fig11": fig11_tradeoff.run,
    "fig12": fig12_path_depth.run,
    "fig13": fig13_sigma_vs_depth.run,
    "fig14": fig14_mean_3sigma.run,
    "fig15": fig15_corners.run,
    "fig16": fig16_local_share.run,
    "extcorner": ext_corner_tuning.run,
}

#: Experiments that only touch the library (no synthesis) — cheap.
LIBRARY_ONLY = ("fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
                "table2")


def build_context(
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    tracer: Optional["Tracer"] = None,
    kernel: Optional[str] = None,
    backend: Optional[str] = None,
) -> ExperimentContext:
    """An :class:`ExperimentContext` honoring the execution knobs.

    A thin veneer over :meth:`~repro.flow.experiment.FlowConfig.
    from_env`, which resolves every knob with the same precedence —
    explicit argument > environment (``REPRO_SCALE``, ``REPRO_JOBS``,
    ``REPRO_KERNEL``, ``REPRO_BACKEND``) > default — so the CLI flags
    and the environment can never disagree about who wins.
    """
    from repro.flow.experiment import FlowConfig, TuningFlow

    config = FlowConfig.from_env(
        jobs=jobs,
        kernel=kernel,
        backend=backend,
        cache=cache,
        tracer=tracer,
    )
    return ExperimentContext(TuningFlow(config))


def _record_in_ledger(
    ledger,
    experiment_id: str,
    result: ExperimentResult,
    context: ExperimentContext,
    manifest_start: int,
    counters_start: Dict[str, float],
    counters_end: Dict[str, float],
    wall: float,
) -> None:
    """Append one run record; a ledger failure never fails the run."""
    from repro.observe.ledger import capture_run

    deltas = {
        name: total - counters_start.get(name, 0)
        for name, total in counters_end.items()
        if total != counters_start.get(name, 0)
    }
    try:
        ledger.append(
            capture_run(
                experiment_id,
                result,
                context.flow,
                stage_records=context.flow.manifest.records[manifest_start:],
                counters=deltas,
                wall=wall,
            )
        )
    except OSError as error:  # pragma: no cover - disk-full / perms
        print(f"warning: ledger append failed: {error}", file=sys.stderr)


def run_experiments(
    context: Optional[ExperimentContext] = None,
    ids: Optional[List[str]] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    ledger=None,
) -> Dict[str, ExperimentResult]:
    """Run the selected experiments (all by default) and return them.

    Without an explicit context, one is built through
    :func:`build_context` so the environment knobs (``REPRO_SCALE``,
    ``REPRO_JOBS``) and the default caching path apply — a bare
    ``ExperimentContext()`` would silently bypass them.

    Every experiment runs inside an ``experiment.<id>`` span on the
    active tracer.  With ``trace_dir`` set, each experiment *also*
    records a standalone trace artifact ``<trace_dir>/<id>.trace.
    jsonl`` (spans and counter totals of just that experiment).

    Each finished experiment appends one :class:`~repro.observe.
    ledger.RunRecord` to the run ledger: ``ledger=None`` resolves it
    from the environment (``REPRO_LEDGER``; default beside the
    artifact store), ``ledger=False`` disables recording, and an
    explicit :class:`~repro.observe.ledger.RunLedger` pins the path.
    """
    from repro.observe import JsonlExporter, Tracer, get_metrics, get_tracer, set_tracer
    from repro.observe.ledger import resolve_ledger

    def metric_counters() -> Dict[str, float]:
        """Live metric counter totals, flattened into ledger-counter
        names (``repro_..._total{label="..."}``) — disjoint from tracer
        counter names, so the two merge without collisions."""
        return get_metrics().snapshot().counter_totals()

    context = context or build_context()
    chosen = ids if ids is not None else list(ALL_EXPERIMENTS)
    directory = None if trace_dir is None else Path(trace_dir)
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    if ledger is None:
        ledger = resolve_ledger()
    elif ledger is False:
        ledger = None
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in chosen:
        session = get_tracer()
        manifest_start = len(context.flow.manifest.records)
        start = time.perf_counter()
        metrics_start = metric_counters()
        if directory is not None:
            path = directory / f"{experiment_id}.trace.jsonl"
            artifact_tracer = Tracer(JsonlExporter(path, truncate=True))
            counters_start = artifact_tracer.counters()
            previous = set_tracer(artifact_tracer)
            try:
                with artifact_tracer.span(f"experiment.{experiment_id}"):
                    results[experiment_id] = ALL_EXPERIMENTS[experiment_id](context)
                artifact_tracer.finish()
            finally:
                set_tracer(previous)
            counters_end = artifact_tracer.counters()
        else:
            counters_start = session.counters()
            with session.span(f"experiment.{experiment_id}"):
                results[experiment_id] = ALL_EXPERIMENTS[experiment_id](context)
            counters_end = session.counters()
        if ledger is not None:
            _record_in_ledger(
                ledger,
                experiment_id,
                results[experiment_id],
                context,
                manifest_start,
                {**counters_start, **metrics_start},
                {**counters_end, **metric_counters()},
                wall=time.perf_counter() - start,
            )
    return results


def report(results: Dict[str, ExperimentResult]) -> str:
    """Text report over a set of experiment results."""
    return "\n\n".join(result.to_text() for result in results.values())
