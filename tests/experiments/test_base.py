"""Experiment infrastructure: result rendering and period derivation."""

import pytest

from repro.experiments.base import ExperimentContext, ExperimentResult


class TestExperimentResult:
    def test_text_contains_all_columns_and_rows(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            rows=[{"a": 1, "b": "left"}, {"a": 2.5, "b": "right"}],
            notes="note line",
        )
        text = result.to_text()
        assert "== x: demo ==" in text
        assert "left" in text and "right" in text
        assert "2.5" in text
        assert text.endswith("note line")

    def test_empty_rows(self):
        result = ExperimentResult("x", "demo", rows=[])
        assert "(no rows)" in result.to_text()

    def test_column(self):
        result = ExperimentResult("x", "t", rows=[{"v": 1}, {"v": 2}])
        assert result.column("v") == [1, 2]

    def test_float_formatting_compact(self):
        result = ExperimentResult("x", "t", rows=[{"v": 0.123456789}])
        assert "0.1235" in result.to_text()


class TestStandardPeriods:
    def test_ratios_match_paper_table1(self, tiny_context):
        periods = tiny_context.standard_periods()
        high = periods["high"]
        assert periods["check"] / high == pytest.approx(2.5 / 2.41, rel=0.02)
        assert periods["medium"] / high == pytest.approx(4.0 / 2.41, rel=0.02)
        assert periods["low"] / high == pytest.approx(10.0 / 2.41, rel=0.02)

    def test_high_point_never_below_minimum(self, tiny_context):
        assert tiny_context.high_performance_period >= tiny_context.minimum_period()

    def test_high_point_is_feasible(self, tiny_context):
        run = tiny_context.flow.baseline(tiny_context.high_performance_period)
        assert run.met

    def test_usage_cut_scales_with_design(self, tiny_context):
        assert tiny_context.usage_cut >= 10
        assert not tiny_context.is_paper_scale


class TestCli:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_unknown_experiment_rejected(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig99"]) == 2

    def test_run_without_ids_rejected(self):
        from repro.__main__ import main

        assert main(["run"]) == 2
