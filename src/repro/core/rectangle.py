"""Largest-rectangle extraction (paper Algorithm 1).

Given a binary LUT, find the largest all-ones axis-aligned rectangle,
preferring — among equal areas — the one "starting as close as
possible to the origin".  The paper's pseudo-code scans lower-left
corners (``ll_x`` outer, then ``ll_y``) and upper-right corners
(``ur_x``, then ``ur_y``) and replaces the best only on *strictly*
larger area, so the tie-break is the scan order itself.  Both
implementations below preserve that order exactly:

* :func:`largest_rectangle_paper` — the literal quadruple loop with an
  explicit all-ones check (O(N^3 M^3)); kept as executable
  specification;
* :func:`largest_rectangle` — a summed-area-table version that checks
  each candidate in O(1) and vectorizes the two inner loops; the
  property-based tests assert it returns bit-identical results.

Conventions: the matrix is indexed ``[row, col]`` = ``[slew, load]``;
in the paper's MATLAB code ``x`` is the column (load) index and ``y``
the row (slew) index.  Returned coordinates are 0-based and inclusive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TuningError


@dataclass(frozen=True)
class Rectangle:
    """An inclusive rectangle of LUT entries."""

    row_lo: int
    col_lo: int
    row_hi: int
    col_hi: int

    @property
    def area(self) -> int:
        """Number of entries covered."""
        return (self.row_hi - self.row_lo + 1) * (self.col_hi - self.col_lo + 1)

    @property
    def far_corner(self) -> tuple:
        """The (row, col) furthest from the origin — where the sigma
        threshold is read (paper Fig. 6, marked entry)."""
        return (self.row_hi, self.col_hi)

    def contains(self, row: int, col: int) -> bool:
        """True when (row, col) lies inside the rectangle."""
        return self.row_lo <= row <= self.row_hi and self.col_lo <= col <= self.col_hi


def _check_binary(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2 or matrix.size == 0:
        raise TuningError(f"binary LUT must be a non-empty 2-D matrix, got {matrix.shape}")
    return matrix


def largest_rectangle_paper(matrix: np.ndarray) -> Optional[Rectangle]:
    """Literal Algorithm 1 (executable specification, O(N^3 M^3)).

    Returns ``None`` when the matrix contains no ones (the paper's code
    returns all-zero coordinates with ``best_area = 0``).
    """
    matrix = _check_binary(matrix)
    n_rows, n_cols = matrix.shape
    best_area = 0
    best: Optional[Rectangle] = None
    for ll_x in range(n_cols):           # paper: for ll_x = 1:N
        for ll_y in range(n_rows):       # paper: for ll_y = 1:M
            for ur_x in range(ll_x, n_cols):
                for ur_y in range(ll_y, n_rows):
                    area = (ur_x - ll_x + 1) * (ur_y - ll_y + 1)
                    if area > best_area and matrix[ll_y : ur_y + 1, ll_x : ur_x + 1].all():
                        best_area = area
                        best = Rectangle(row_lo=ll_y, col_lo=ll_x, row_hi=ur_y, col_hi=ur_x)
    return best


def largest_rectangle(matrix: np.ndarray) -> Optional[Rectangle]:
    """Optimized Algorithm 1 with identical results and tie-breaking.

    A summed-area table makes the all-ones test O(1); for each
    lower-left corner the two inner loops are evaluated vectorized and
    the first maximal candidate *in the paper's scan order* is kept.
    """
    matrix = _check_binary(matrix)
    n_rows, n_cols = matrix.shape
    # summed[i, j] = number of ones in matrix[:i, :j]
    summed = np.zeros((n_rows + 1, n_cols + 1), dtype=np.int64)
    summed[1:, 1:] = np.cumsum(np.cumsum(matrix, axis=0), axis=1)

    best_area = 0
    best: Optional[Rectangle] = None
    heights = np.arange(1, n_rows + 1)
    for ll_x in range(n_cols):
        for ll_y in range(n_rows):
            if not matrix[ll_y, ll_x]:
                continue
            widths = np.arange(1, n_cols - ll_x + 1)
            # ones[h-1, w-1] = ones in rows [ll_y, ll_y+h), cols [ll_x, ll_x+w)
            hs = heights[: n_rows - ll_y]
            ones = (
                summed[ll_y + hs[:, None], ll_x + widths[None, :]]
                - summed[ll_y, ll_x + widths[None, :]]
                - summed[ll_y + hs[:, None], ll_x]
                + summed[ll_y, ll_x]
            )
            areas = hs[:, None] * widths[None, :]
            full = ones == areas
            if not full.any():
                continue
            candidate_areas = np.where(full, areas, 0)
            local_best = int(candidate_areas.max())
            if local_best <= best_area:
                continue
            # Paper scan order for this corner: ur_x (width) outer,
            # ur_y (height) inner -> first maximal in column-major order.
            flat = candidate_areas.T.ravel()  # width-major
            first = int(np.argmax(flat == local_best))
            w_index, h_index = divmod(first, hs.size)
            best_area = local_best
            best = Rectangle(
                row_lo=ll_y,
                col_lo=ll_x,
                row_hi=ll_y + int(hs[h_index]) - 1,
                col_hi=ll_x + int(widths[w_index]) - 1,
            )
    return best
