"""Bench: Fig. 12 — path-depth population baseline vs tuned."""

from conftest import show

from repro.experiments import fig12_path_depth


def test_fig12_path_depth(benchmark, context):
    result = benchmark.pedantic(
        fig12_path_depth.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    total_base = sum(r["baseline_paths"] for r in result.rows)
    total_tuned = sum(r["tuned_paths"] for r in result.rows)
    # one worst path per unique endpoint, both designs
    assert total_base == total_tuned > 0
    # the population spans short to deep paths
    depths = [r["depth"] for r in result.rows if r["baseline_paths"]]
    assert min(depths) <= 3
    assert max(depths) >= 15
    # restriction does not shrink the design (buffering adds cells)
    assert "tuned adds cells" in result.notes
