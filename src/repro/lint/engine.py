"""The single-pass rule engine behind ``python -m repro lint``.

One parse, one walk: each file is parsed once with :mod:`ast` and the
tree is traversed exactly once.  Every rule registers the node types it
cares about (:attr:`Rule.node_types`) and the engine multiplexes the
visit — ``O(nodes + matches)`` regardless of how many rules are
loaded, so adding a rule costs its handler, not another traversal.

The engine owns everything rules would otherwise reimplement:

* the ancestor stack and the enclosing function/class scope stack;
* import resolution (``import numpy as np`` makes ``np.random.normal``
  resolve to ``numpy.random.normal``);
* the module-level vs nested classification of every ``def``;
* ``# repro: noqa[RULE-ID]`` suppression comments (the comment must
  sit on the flagged line; several ids separate with commas);
* per-rule scratch state (:attr:`FileContext.state`) scoped to the
  file being linted.

Files that fail to parse produce a :data:`SYNTAX_RULE_ID` finding
instead of crashing the run — a lint sweep must always finish.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.lint.findings import Finding

#: Pseudo-rule id reported for files the parser rejects.
SYNTAX_RULE_ID = "LINT000"

#: ``# repro: noqa[DET001]`` / ``# repro: noqa[DET001, PROC002]``.
NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_\s,-]+)\]")

#: ``# repro: noqa-file[DET001]`` — suppresses the listed rules for the
#: whole file.  Must sit in the first :data:`NOQA_FILE_LINES` lines so a
#: reader opening the file sees the waiver immediately.
NOQA_FILE_PATTERN = re.compile(r"#\s*repro:\s*noqa-file\[([A-Za-z0-9_\s,-]+)\]")

#: How deep into a file a ``noqa-file`` comment is honoured.
NOQA_FILE_LINES = 10


def collect_noqa_file(lines: Sequence[str]) -> Set[str]:
    """Rule ids suppressed file-wide by a leading ``noqa-file`` comment."""
    suppressed: Set[str] = set()
    for line in lines[:NOQA_FILE_LINES]:
        match = NOQA_FILE_PATTERN.search(line)
        if match:
            suppressed.update(
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            )
    return suppressed

#: AST nodes that open a new lexical scope.
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class Rule:
    """Base class every lint rule derives from.

    A rule declares its identity (:attr:`rule_id`, :attr:`title`,
    :attr:`hint`), the AST node types it wants to see
    (:attr:`node_types`) and a :meth:`visit` handler.  Rules hold no
    per-file state of their own — anything scoped to the current file
    goes through :attr:`FileContext.state` — so one rule instance
    serves a whole run.
    """

    rule_id: str = "RULE000"
    title: str = ""
    severity: str = "error"
    hint: str = ""
    rationale: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, context: "FileContext") -> bool:
        """Whether the rule runs on this file at all (zone scoping)."""
        return True

    def visit(self, node: ast.AST, context: "FileContext") -> None:
        """Handle one node of a registered type."""
        raise NotImplementedError

    def finish(self, context: "FileContext") -> None:
        """End-of-file hook (after the whole tree was walked)."""


class FileContext:
    """Everything the rules may ask about the file being linted."""

    def __init__(
        self,
        path: str,
        module: str,
        text: str,
        tree: ast.Module,
    ):
        self.path = path
        self.module = module
        self.lines = text.splitlines()
        self.tree = tree
        #: Ancestors of the node being visited, outermost first.
        self.stack: List[ast.AST] = []
        #: ``import`` aliases: local name -> dotted module path.
        self.module_aliases: Dict[str, str] = {}
        #: ``from X import Y [as Z]``: local name -> dotted origin.
        self.from_imports: Dict[str, str] = {}
        #: Per-rule scratch space, keyed by rule id.
        self.state: Dict[str, Dict[str, Any]] = {}
        self.findings: List[Finding] = []
        #: ``(line, rule-id)`` suppressions that actually fired.
        self.suppressed: List[Tuple[int, str]] = []
        self.noqa = self._collect_noqa()
        self.noqa_file = collect_noqa_file(self.lines)
        self.module_defs, self.nested_defs = self._collect_defs(tree)

    def _collect_noqa(self) -> Dict[int, Set[str]]:
        """Map 1-based line number -> suppressed rule ids on that line."""
        suppressions: Dict[int, Set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = NOQA_PATTERN.search(line)
            if match:
                ids = {
                    part.strip().upper()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                if ids:
                    suppressions[number] = ids
        return suppressions

    @staticmethod
    def _collect_defs(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """Split every ``def`` name into module-level vs nested."""
        module_defs = {
            node.name for node in tree.body if isinstance(node, _DEF_NODES)
        }
        all_defs = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, _DEF_NODES)
        }
        return module_defs, all_defs - module_defs

    def scope_functions(self) -> List[str]:
        """Names of the enclosing functions, outermost first."""
        return [
            node.name
            for node in self.stack
            if isinstance(node, _DEF_NODES)
        ]

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, dotted: str) -> Tuple[str, bool]:
        """Expand the import alias heading a dotted name.

        Returns ``(resolved, known)`` where ``known`` says the head was
        found in this file's imports — ``np.random.normal`` becomes
        ``("numpy.random.normal", True)``, while an unimported
        ``state.random.draw`` stays ``("state.random.draw", False)``
        so rules can avoid guessing about attribute chains they cannot
        ground.
        """
        head, _, rest = dotted.partition(".")
        base = self.module_aliases.get(head) or self.from_imports.get(head)
        if base is None:
            return dotted, False
        return (base + "." + rest if rest else base), True

    def resolved_call_name(self, call: ast.Call) -> Tuple[Optional[str], bool]:
        """The resolved dotted name of a call's target (or ``None``)."""
        dotted = self.dotted_name(call.func)
        if dotted is None:
            return None, False
        return self.resolve(dotted)

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        """File a finding at ``node`` unless a noqa comment covers it."""
        line = getattr(node, "lineno", 1)
        if rule.rule_id in self.noqa_file:
            self.suppressed.append((line, rule.rule_id))
            return
        if rule.rule_id in self.noqa.get(line, ()):
            self.suppressed.append((line, rule.rule_id))
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                column=getattr(node, "col_offset", 0) + 1,
                rule_id=rule.rule_id,
                message=message,
                hint=rule.hint if hint is None else hint,
                severity=rule.severity,
            )
        )

    def _note_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.module_aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the name ``a``.
                    head = alias.name.partition(".")[0]
                    self.module_aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )


def module_name_for(path: Path) -> str:
    """Infer the dotted module name of a source path.

    The segment chain is cut at the last ``src`` directory (or, failing
    that, the first ``repro`` segment), so both installed trees and
    repository checkouts map ``.../src/repro/flow/pipeline.py`` to
    ``repro.flow.pipeline``.  ``__init__`` collapses onto its package.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, sorted for determinism.

    Hidden directories and ``__pycache__`` are skipped.
    """
    seen: Set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            continue
        for candidate in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.parts
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class LintEngine:
    """Runs a set of rules over files in a single AST traversal each."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def lint_source(
        self,
        text: str,
        path: str = "<memory>",
        module: Optional[str] = None,
    ) -> List[Finding]:
        """Lint a source string (the unit-test entry point)."""
        if module is None:
            module = module_name_for(Path(path))
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 1),
                    rule_id=SYNTAX_RULE_ID,
                    message=f"file does not parse: {error.msg}",
                    hint="fix the syntax error; nothing else was checked",
                )
            ]
        context = FileContext(path=path, module=module, text=text, tree=tree)
        active = [rule for rule in self.rules if rule.applies_to(context)]
        if active:
            self._walk(tree, context, frozenset(active))
            for rule in active:
                rule.finish(context)
        return context.findings

    def lint_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        """Lint one file, reporting paths relative to ``root``."""
        display = path
        if root is not None:
            try:
                display = path.relative_to(root)
            except ValueError:
                display = path
        text = path.read_text(encoding="utf-8")
        return self.lint_source(
            text, path=display.as_posix(), module=module_name_for(path)
        )

    def lint_paths(
        self, paths: Sequence[Path], root: Optional[Path] = None
    ) -> Tuple[List[Finding], int]:
        """Lint every python file under ``paths``.

        Returns the sorted findings and the number of files scanned.
        """
        findings: List[Finding] = []
        n_files = 0
        for file_path in iter_python_files(paths):
            n_files += 1
            findings.extend(self.lint_file(file_path, root=root))
        return sorted(findings), n_files

    def _walk(
        self,
        node: ast.AST,
        context: FileContext,
        active: frozenset,
    ) -> None:
        context._note_import(node)
        for rule in self._dispatch.get(type(node), ()):
            if rule in active:
                rule.visit(node, context)
        context.stack.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, context, active)
        context.stack.pop()
