"""The ``python -m repro lint`` subcommand.

Thin orchestration over the engine: discover files, run the default
rules, reconcile against the committed baseline, render console or
JSON output, and turn the result into an exit code —

* ``0`` — no findings beyond the baseline;
* ``1`` — new findings (the CI-failing case);
* ``2`` — the lint run itself could not proceed (bad path, malformed
  baseline).

``--update-baseline`` rewrites the baseline from the current findings
instead of failing on them — the ratchet's one sanctioned way down —
and reports how many entries the update added or retired.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import LintError
from repro.lint.baseline import BASELINE_FILENAME, Baseline, write_baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding
from repro.lint.rules import DEFAULT_RULES, rule_catalog


def default_lint_paths(root: Path) -> List[Path]:
    """What to lint when no paths are given: the ``src`` tree if the
    working directory is a checkout, else the installed package."""
    source_tree = root / "src"
    if source_tree.is_dir():
        return [source_tree]
    import repro

    return [Path(repro.__file__).parent]


def render_console(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    n_files: int,
    baseline_path: Optional[Path],
) -> str:
    """The human-facing report: one line per new finding + a summary."""
    lines = [finding.to_text() for finding in new]
    summary = (
        f"lint: {n_files} files, {len(new)} new finding"
        f"{'s' if len(new) != 1 else ''}"
    )
    if baselined:
        summary += (
            f", {len(baselined)} baselined ({baseline_path})"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    n_files: int,
) -> str:
    """The machine-facing report (the CI artifact format)."""
    per_rule: dict = {}
    for finding in new:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    payload = {
        "version": 1,
        "rules": rule_catalog(),
        "findings": [finding.to_payload() for finding in new],
        "baselined": [finding.to_payload() for finding in baselined],
        "summary": {
            "files": n_files,
            "new": len(new),
            "baselined": len(baselined),
            "per_rule": dict(sorted(per_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_rule_list() -> str:
    lines = []
    for rule in rule_catalog():
        lines.append(f"{rule['id']}  {rule['title']} [{rule['severity']}]")
        lines.append(f"    why: {rule['rationale']}")
        lines.append(f"    fix: {rule['hint']}")
    return "\n".join(lines)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if getattr(args, "list_rules", False):
        print(_render_rule_list())
        return 0
    root = Path.cwd()
    paths = [Path(p) for p in (args.paths or [])]
    if not paths:
        paths = default_lint_paths(root)
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = LintEngine(DEFAULT_RULES)
    findings, n_files = engine.lint_paths(paths, root=root)

    baseline_path: Optional[Path] = (
        Path(args.baseline) if args.baseline else None
    )
    if baseline_path is None and (root / BASELINE_FILENAME).is_file():
        baseline_path = root / BASELINE_FILENAME

    if getattr(args, "update_baseline", False):
        target = baseline_path or root / BASELINE_FILENAME
        try:
            before = len(Baseline.load(target))
        except LintError:
            before = 0
        summary = write_baseline(target, findings)
        print(
            f"lint: baseline rewritten with {summary['entries']} entries "
            f"(was {before}) -> {target}"
        )
        return 0

    try:
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None
            else Baseline.empty()
        )
    except LintError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    new, baselined = baseline.partition(findings)

    if args.format == "json":
        print(render_json(new, baselined, n_files))
    else:
        print(render_console(new, baselined, n_files, baseline_path))
        stale = baseline.stale_count(findings)
        if stale:
            print(
                f"lint: {stale} baseline entries no longer match — run "
                "with --update-baseline to ratchet the debt down"
            )
    return 1 if new else 0


def configure_lint_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src tree)",
    )
    parser.add_argument(
        "--format",
        choices=("console", "json"),
        default="console",
        help="output format (json is the CI artifact shape)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {BASELINE_FILENAME} beside the "
        "working directory when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings "
        "(deterministic: sorted entries, stable paths)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, rationale, fix hint) and exit",
    )
