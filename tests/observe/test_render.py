"""Console rendering: the time tree, shares and counter tables."""

from __future__ import annotations

import json

from repro.observe import (
    MemorySink,
    Trace,
    Tracer,
    load_trace,
    render_counters,
    render_trace,
    render_tree,
)


def _span(name, span_id, parent, wall, start=0.0):
    """A minimal span record for rendering tests."""
    return {
        "type": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "wall": wall,
        "cpu": wall,
        "start": start,
    }


class TestRenderTree:
    """Grouping, ordering and percentage arithmetic of the tree."""

    def test_empty_trace(self):
        """No spans renders a clear placeholder line."""
        assert "no spans" in render_tree([])

    def test_groups_siblings_by_name_with_counts(self):
        """Same-name siblings fold to one ``xN`` line; shares are of
        the parent's wall time."""
        spans = [
            _span("root", "r", None, 10.0),
            _span("work", "w1", "r", 4.0, start=1),
            _span("work", "w2", "r", 4.0, start=2),
        ]
        text = render_tree(spans)
        assert "x2" in text
        assert "80.0%" in text  # 8s of work under a 10s root
        assert "(self)" in text  # the remaining 2s
        assert "20.0%" in text

    def test_orphan_spans_render_as_roots(self):
        """A span whose parent isn't in the file (cross-process tail)
        still renders, as a root."""
        spans = [_span("lonely", "x", "missing-parent", 1.0)]
        text = render_tree(spans)
        assert "lonely" in text
        assert "1 spans" in text

    def test_deep_nesting_indents(self):
        """Child groups indent under their parents."""
        spans = [
            _span("a", "1", None, 4.0),
            _span("b", "2", "1", 3.0),
            _span("c", "3", "2", 2.0),
        ]
        lines = render_tree(spans).splitlines()
        a_line = next(l for l in lines if l.lstrip().startswith("a"))
        c_line = next(l for l in lines if l.lstrip().startswith("c"))
        assert len(c_line) - len(c_line.lstrip()) > len(a_line) - len(
            a_line.lstrip()
        )


class TestPartialTraces:
    """Truncated files and unfinished spans render, never raise.

    The shape a killed worker (or a hand-truncated file) leaves
    behind: span records without close-time fields, torn lines,
    orphans whose parent never hit the disk.
    """

    def test_unfinished_span_marked(self):
        """A span missing ``wall``/``cpu`` renders ``[unfinished]``
        with zero wall time, and the header counts it."""
        spans = [
            _span("root", "r", None, 5.0),
            {"type": "span", "name": "cut", "id": "c", "parent": "r"},
        ]
        text = render_tree(spans)
        assert "cut [unfinished]" in text
        assert "(1 unfinished)" in text

    def test_hand_truncated_jsonl_round_trip(self, tmp_path):
        """A hand-built partial trace — finished span, unfinished
        span, torn line, orphan — loads and renders end to end."""
        path = tmp_path / "partial.jsonl"
        records = [
            _span("run", "r", None, 3.0),
            {"type": "span", "name": "killed", "id": "k", "parent": "r"},
            _span("tail", "t", "never-written", 1.0),
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.write('{"type": "span", "name": "to')  # torn mid-write
        trace = load_trace(path)
        assert len(trace.spans) == 3
        text = render_trace(trace)
        assert "killed [unfinished]" in text
        assert "tail" in text  # orphan promoted to a root
        assert "run" in text

    def test_all_spans_unfinished(self):
        """Even a trace with no finished span renders a tree."""
        spans = [{"type": "span", "name": "only", "id": "o", "parent": None}]
        text = render_tree(spans)
        assert "only [unfinished]" in text
        assert "0.000s at the root" in text

    def test_multi_trace_id_warning(self):
        """Interleaved runs in one file are called out up front."""
        trace = Trace(
            spans=[_span("run", "r", None, 1.0)],
            trace_ids=["t1", "t2"],
        )
        assert "interleaved traces" in render_trace(trace)


class TestRenderCounters:
    """The counter/gauge table."""

    def test_counters_and_gauges_listed(self):
        """Counter totals and gauges render sorted by name."""
        text = render_counters({"b.count": 2, "a.count": 1}, {"workers": 4})
        assert text.index("a.count") < text.index("b.count")
        assert "workers" in text

    def test_empty(self):
        """Nothing recorded renders a placeholder."""
        assert "none recorded" in render_counters({})


class TestRenderTrace:
    """End to end: a live tracer's output renders as tree + counters."""

    def test_full_report(self):
        """A real traced region produces both sections."""
        tracer = Tracer(MemorySink())
        with tracer.span("run"):
            with tracer.span("step"):
                pass
            tracer.add("items", 3)
        trace = Trace(
            spans=[s.to_record() for s in tracer.spans],
            counters=tracer.counters(),
        )
        text = render_trace(trace)
        assert "run" in text and "step" in text
        assert "items" in text
