"""Extension: library tuning applied per PVT corner.

Paper Sec. VII.C argues that because mean and sigma scale by the same
factor across corners, "the library tuning method can also be applied
in combination with these PVT corners and the expected behavior scales
with the aforementioned factor".  This extension actually does it:
characterize statistical libraries at fast/typical/slow, tune each
with a sigma ceiling *scaled by the corner's delay factor*, and verify
the resulting windows agree — the typical-corner tuning transfers.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer
from repro.core.restriction import pin_equivalent_sigma
from repro.core.tuner import LibraryTuner
from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.variation.process import CORNERS

#: Cell slice used for the per-corner comparison (keeps runtime low
#: while covering weak/strong and simple/complex cells).
_FAMILIES = ["INV", "ND2", "NR2", "XNR2", "ADDF", "DFF"]


def _sigma_scale(reference, other) -> float:
    """Median per-entry sigma ratio between two statistical libraries."""
    ratios = []
    for cell in reference:
        for pin in cell.output_pins():
            ref = pin_equivalent_sigma(pin)
            oth = pin_equivalent_sigma(other.cell(cell.name).pin(pin.name))
            ratios.append(oth.values / ref.values)
    return float(np.median(np.concatenate([r.ravel() for r in ratios])))


def run(
    context: ExperimentContext,
    ceiling: float = 0.02,
    n_samples: int = 30,
    seed: int = 21,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    specs = build_catalog(families=_FAMILIES)
    libraries = {
        name: Characterizer(corner=corner).statistical_library(
            specs, n_samples=n_samples, seed=seed
        )
        for name, corner in CORNERS.items()
    }
    typical = libraries["typical"]

    rows = []
    agreements: Dict[str, float] = {}
    typical_windows = LibraryTuner(typical).tune("sigma_ceiling", ceiling).windows
    for name, library in libraries.items():
        scale = _sigma_scale(typical, library)
        tuned = LibraryTuner(library).tune("sigma_ceiling", ceiling * scale)
        same = sum(
            1
            for key, window in tuned.windows.items()
            if _windows_agree(window, typical_windows[key])
        )
        agreements[name] = same / len(tuned.windows)
        rows.append({
            "corner": name,
            "sigma_scale_vs_TT": round(scale, 3),
            "scaled_ceiling_ns": round(ceiling * scale, 4),
            "pins_restricted": sum(
                1 for w in tuned.windows.values()
                if w is None or _is_restricted(library, w)
            ),
            "window_agreement_vs_TT": round(agreements[name], 3),
        })
    return ExperimentResult(
        experiment_id="ext-corner",
        title=f"Per-corner tuning with corner-scaled ceiling ({ceiling:g} ns at TT)",
        rows=rows,
        notes=(
            "scaling the ceiling by the corner's sigma factor reproduces the "
            "typical-corner windows — the transferability Sec. VII.C predicts"
        ),
    )


def _windows_agree(a, b) -> bool:
    if a is None or b is None:
        return (a is None) == (b is None)
    return (
        abs(a.max_load - b.max_load) < 1e-9 and abs(a.max_slew - b.max_slew) < 1e-9
    )


def _is_restricted(library, window) -> bool:
    # a window smaller than the full grid counts as restricted
    return window.max_slew < 1.2 - 1e-9 or window.min_slew > 0.008 + 1e-9
