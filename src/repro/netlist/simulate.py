"""Functional (cycle-accurate, two-valued) netlist simulation.

Used by the test-suite to verify the design generators bit-for-bit
against plain Python arithmetic: an adder netlist must add, the ALU
must match its Python reference, the microcontroller's program counter
must count.

Semantics:

* combinational instances evaluate in topological order via their
  family's :meth:`~repro.cells.functions.CellFunction.evaluate`;
* flip-flops sample D on the (implicit) rising clock edge of
  :func:`step`; an inactive-low reset ``RN == 0`` forces Q to 0, an
  inactive-low set ``SN == 0`` forces Q to 1 (set dominates);
* latches are modelled clock-synchronously: transparent when EN is
  high at the step boundary, otherwise holding — sufficient for the
  generators, which only use latches in enable-gated storage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Instance, Netlist

NetValues = Dict[str, bool]
State = Dict[str, bool]


def _sequential_q_net(instance: Instance) -> str:
    return instance.net_of(instance.function.output_pins[0])


def evaluate_combinational(
    netlist: Netlist, input_values: Mapping[str, bool], state: Mapping[str, bool]
) -> NetValues:
    """Evaluate every net for given primary inputs and register state."""
    values: NetValues = {}
    for port in netlist.input_ports():
        if port not in input_values:
            raise NetlistError(f"missing value for input port {port}")
        values[port] = bool(input_values[port])
    for instance in netlist.sequential_instances():
        q_net = _sequential_q_net(instance)
        values[q_net] = bool(state.get(q_net, False))
    for instance in netlist.combinational_order():
        inputs = {
            pin: values[instance.net_of(pin)] for pin in instance.function.input_pins
        }
        outputs = instance.function.evaluate(inputs)
        for pin, value in outputs.items():
            values[instance.net_of(pin)] = bool(value)
    return values


def _next_state(netlist: Netlist, values: NetValues, state: Mapping[str, bool]) -> State:
    next_state: State = {}
    for instance in netlist.sequential_instances():
        function = instance.function
        q_net = _sequential_q_net(instance)
        d_value = values[instance.net_of("D")]
        if function.is_latch:
            enable = values[instance.net_of("EN")]
            next_state[q_net] = d_value if enable else bool(state.get(q_net, False))
            continue
        q_next = d_value
        if "RN" in function.input_pins and not values[instance.net_of("RN")]:
            q_next = False
        if "SN" in function.input_pins and not values[instance.net_of("SN")]:
            q_next = True
        next_state[q_net] = q_next
    return next_state


def step(
    netlist: Netlist, input_values: Mapping[str, bool], state: Mapping[str, bool]
) -> Tuple[NetValues, State]:
    """One clock cycle: evaluate, then advance every register."""
    values = evaluate_combinational(netlist, input_values, state)
    return values, _next_state(netlist, values, state)


def output_values(netlist: Netlist, values: Mapping[str, bool]) -> Dict[str, bool]:
    """Primary-output values from a net-value map."""
    return {port: bool(values[netlist.port_net(port)]) for port in netlist.output_ports()}


def simulate(
    netlist: Netlist,
    input_values: Mapping[str, bool],
    state: Optional[Mapping[str, bool]] = None,
) -> Dict[str, bool]:
    """Combinational convenience: inputs -> primary outputs."""
    values = evaluate_combinational(netlist, input_values, state or {})
    return output_values(netlist, values)


def simulate_sequence(
    netlist: Netlist,
    input_sequence: Iterable[Mapping[str, bool]],
    initial_state: Optional[Mapping[str, bool]] = None,
) -> List[Dict[str, bool]]:
    """Clocked simulation over a sequence of input vectors.

    Returns the primary-output values observed in each cycle (before
    the clock edge of that cycle).
    """
    state: State = dict(initial_state or {})
    observed: List[Dict[str, bool]] = []
    for input_values in input_sequence:
        values, state = step(netlist, input_values, state)
        observed.append(output_values(netlist, values))
    return observed


def bus_value(values: Mapping[str, bool], bus: List[str]) -> int:
    """Integer value of a LSB-first bus of nets."""
    return sum(1 << i for i, net in enumerate(bus) if values[net])


def int_to_bus_inputs(name: str, width: int, value: int) -> Dict[str, bool]:
    """Input map driving bus ``name`` with an integer value."""
    if value < 0 or value >= 1 << width:
        raise NetlistError(f"value {value} does not fit in {width} bits")
    return {f"{name}[{i}]": bool((value >> i) & 1) for i in range(width)}
