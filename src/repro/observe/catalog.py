"""The closed catalog of every live metric the repo emits.

Every instrument is declared *here*, bound to the process-wide
registry, and imported by the module that drives it — never created
at the point of use.  The OBS001 lint rule enforces the closure: a
``repro_``-prefixed metric name handed to ``.counter()`` / ``.gauge()``
/ ``.histogram()`` anywhere else in ``repro.*`` is flagged, so a typo
can never silently fork a time series.

The full name / type / labels / owner table is documented in
DESIGN.md §17; keep the two in sync when adding instruments.
"""

from __future__ import annotations

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    get_metrics,
    log_buckets,
)

_REGISTRY = get_metrics()

# -- serve: the HTTP front (repro.serve.server / handlers / coalesce) --

#: Requests answered, by request kind and outcome
#: (``computed`` / ``warm`` / ``coalesced`` / ``ok`` / ``error`` /
#: ``rejected``).
SERVE_REQUESTS: Counter = _REGISTRY.counter(
    "repro_serve_requests_total",
    "Requests answered by the tuning server",
    labelnames=("kind", "outcome"),
)

#: End-to-end request latency (route + handler), seconds.
SERVE_REQUEST_SECONDS: Histogram = _REGISTRY.histogram(
    "repro_serve_request_seconds",
    "End-to-end request latency in seconds",
    labelnames=("kind", "outcome"),
    buckets=log_buckets(-4, 2),
)

#: Responses by HTTP status class (2xx / 4xx / 5xx).
SERVE_HTTP_RESPONSES: Counter = _REGISTRY.counter(
    "repro_serve_http_responses_total",
    "HTTP responses by status class",
    labelnames=("class",),
)

#: Requests currently inside the router (accepted, not yet answered).
SERVE_INFLIGHT: Gauge = _REGISTRY.gauge(
    "repro_serve_inflight_requests",
    "Requests currently being routed",
)

#: Coalescer role counts: one ``leader`` runs the computation, every
#: ``follower`` piggybacks on the leader's result.
SERVE_COALESCE: Counter = _REGISTRY.counter(
    "repro_serve_coalesce_total",
    "Coalesced request groups by role",
    labelnames=("role",),
)

# -- dispatch: the bounded async bridge (repro.parallel.backends) ------

#: Blocking submissions currently in flight on the dispatcher.
DISPATCH_PENDING: Gauge = _REGISTRY.gauge(
    "repro_dispatch_pending",
    "Dispatcher submissions in flight",
)

#: The dispatcher's backpressure bound (429 above this).
DISPATCH_CAPACITY: Gauge = _REGISTRY.gauge(
    "repro_dispatch_capacity",
    "Dispatcher backpressure bound",
)

# -- execution backends (repro.parallel.backends) ----------------------

#: Tasks crossing a backend, by backend name and lifecycle event
#: (``dispatched`` / ``completed``).
BACKEND_TASKS: Counter = _REGISTRY.counter(
    "repro_backend_tasks_total",
    "Tasks dispatched to and completed by execution backends",
    labelnames=("backend", "event"),
)

#: Wall time of one backend task, seconds, measured in the worker.
BACKEND_TASK_SECONDS: Histogram = _REGISTRY.histogram(
    "repro_backend_task_seconds",
    "Per-task worker wall time in seconds",
    labelnames=("backend",),
    buckets=log_buckets(-4, 2),
)

# -- stores: artifacts + .npz library cache (repro.parallel) -----------

#: Artifact-store lookups by event (``hit`` / ``miss`` / ``healed``).
STORE_ARTIFACT_EVENTS: Counter = _REGISTRY.counter(
    "repro_store_artifact_total",
    "Artifact store lookups by event",
    labelnames=("event",),
)

#: Artifact bytes crossing the disk boundary (``read`` / ``written``).
STORE_ARTIFACT_BYTES: Counter = _REGISTRY.counter(
    "repro_store_artifact_bytes_total",
    "Artifact store bytes by direction",
    labelnames=("direction",),
)

#: ``.npz`` library-cache lookups by event (``hit`` / ``miss``).
STORE_LIBRARY_EVENTS: Counter = _REGISTRY.counter(
    "repro_store_library_total",
    "Library (.npz) cache lookups by event",
    labelnames=("event",),
)

#: Library-cache bytes crossing the disk boundary.
STORE_LIBRARY_BYTES: Counter = _REGISTRY.counter(
    "repro_store_library_bytes_total",
    "Library (.npz) cache bytes by direction",
    labelnames=("direction",),
)

# -- characterization (repro.characterization) -------------------------

#: Cells fully characterized (statistical or per-sample).
CHARACTERIZE_CELLS: Counter = _REGISTRY.counter(
    "repro_characterize_cells_total",
    "Cells characterized",
)

#: Monte-Carlo samples evaluated across all characterized cells.
CHARACTERIZE_MC_SAMPLES: Counter = _REGISTRY.counter(
    "repro_characterize_mc_samples_total",
    "Monte-Carlo samples evaluated",
)
