"""Coalescer semantics: one computation, N waiters."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import TuningError
from repro.serve.coalesce import RequestCoalescer


def run(coro):
    """Drive one coroutine to completion on a fresh loop."""
    return asyncio.run(coro)


class TestRequestCoalescer:
    def test_identical_keys_share_one_computation(self):
        async def scenario():
            coalescer = RequestCoalescer()
            calls = 0
            gate = asyncio.Event()

            async def compute():
                nonlocal calls
                calls += 1
                await gate.wait()
                return "result"

            async def request():
                return await coalescer.run("k", compute)

            tasks = [asyncio.ensure_future(request()) for _ in range(8)]
            await asyncio.sleep(0)  # let every request reach the coalescer
            assert coalescer.inflight == 1
            gate.set()
            results = await asyncio.gather(*tasks)
            assert calls == 1
            values = [value for value, _ in results]
            joined = [joined for _, joined in results]
            assert values == ["result"] * 8
            assert joined.count(False) == 1  # exactly one leader
            assert joined.count(True) == 7
            assert coalescer.started == 1
            assert coalescer.coalesced == 7
            assert coalescer.inflight == 0

        run(scenario())

    def test_distinct_keys_do_not_share(self):
        async def scenario():
            coalescer = RequestCoalescer()
            calls = []

            async def compute_for(key):
                calls.append(key)
                return key.upper()

            results = await asyncio.gather(
                coalescer.run("a", lambda: compute_for("a")),
                coalescer.run("b", lambda: compute_for("b")),
            )
            assert sorted(calls) == ["a", "b"]
            assert {value for value, _ in results} == {"A", "B"}
            assert coalescer.coalesced == 0

        run(scenario())

    def test_settled_key_restarts_fresh(self):
        """After the task settles, the same key computes again."""

        async def scenario():
            coalescer = RequestCoalescer()
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                return calls

            first, _ = await coalescer.run("k", compute)
            second, _ = await coalescer.run("k", compute)
            assert (first, second) == (1, 2)
            assert coalescer.started == 2

        run(scenario())

    def test_exception_reaches_every_waiter(self):
        async def scenario():
            coalescer = RequestCoalescer()
            gate = asyncio.Event()

            async def compute():
                await gate.wait()
                raise TuningError("shared failure")

            async def request():
                try:
                    await coalescer.run("k", compute)
                except TuningError as error:
                    return str(error)
                return None

            tasks = [asyncio.ensure_future(request()) for _ in range(4)]
            await asyncio.sleep(0)
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            assert outcomes == ["shared failure"] * 4
            assert coalescer.inflight == 0

        run(scenario())

    def test_follower_survives_leader_cancellation(self):
        """Cancelling the leader's await must not kill the shared task."""

        async def scenario():
            coalescer = RequestCoalescer()
            gate = asyncio.Event()

            async def compute():
                await gate.wait()
                return "survived"

            leader = asyncio.ensure_future(coalescer.run("k", compute))
            await asyncio.sleep(0)
            follower = asyncio.ensure_future(coalescer.run("k", compute))
            await asyncio.sleep(0)
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            gate.set()
            value, joined = await follower
            assert value == "survived"
            assert joined is True

        run(scenario())
