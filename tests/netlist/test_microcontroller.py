"""The evaluation design: size, structure, behaviour."""

import pytest

from repro.netlist.generators.microcontroller import (
    MicrocontrollerParams,
    build_microcontroller,
)
from repro.netlist.simulate import simulate_sequence


@pytest.fixture(scope="module")
def mcu():
    return build_microcontroller()


@pytest.fixture(scope="module")
def small_mcu():
    return build_microcontroller(
        MicrocontrollerParams(
            width=16, regfile_bits=3, mult_width=8, n_timers=2, timer_width=8,
            control_gates=600, status_width=24, n_uarts=1, gpio_width=8,
        ),
        name="small_mcu",
    )


class TestScale:
    def test_paper_scale_gate_count(self, mcu):
        """The paper's design is ~20k gates; ours must be in that class."""
        count = len(mcu)
        assert 15_000 <= count <= 25_000

    def test_path_depth_population(self, mcu):
        """Depths must span short..~60 like the paper's Fig. 12/14."""
        levels = mcu.levelize()
        deepest = max(levels.values())
        assert 50 <= deepest <= 75
        assert min(v for v in levels.values() if v > 0) <= 3

    def test_structure_valid(self, mcu):
        mcu.validate()

    def test_deterministic(self):
        a = build_microcontroller()
        b = build_microcontroller()
        assert a.stats() == b.stats()
        assert a.family_histogram() == b.family_histogram()

    def test_seed_changes_control_logic(self):
        a = build_microcontroller(MicrocontrollerParams(seed=1), name="a")
        b = build_microcontroller(MicrocontrollerParams(seed=2), name="b")
        assert a.family_histogram() != b.family_histogram()

    def test_simple_cells_dominate(self, mcu):
        """Paper Fig. 9: NAND/NOR/INV/FF are the most used families."""
        histogram = mcu.family_histogram()
        top6 = {k for k, _ in sorted(histogram.items(), key=lambda kv: -kv[1])[:6]}
        assert {"ND2", "INV"} <= top6
        assert any(k.startswith("DFF") for k in top6)

    def test_has_sequential_endpoints(self, mcu):
        assert len(mcu.sequential_instances()) > 1000
        assert len(mcu.endpoint_nets()) > 1000


class TestBehaviour:
    def test_pc_increments_after_reset(self, small_mcu):
        inputs = {port: False for port in small_mcu.input_ports()}
        inputs["rst_n"] = True
        if "tie1" in inputs:
            inputs["tie1"] = True
        observed = simulate_sequence(small_mcu, [dict(inputs)] * 5)
        width = 16
        pcs = [
            sum(1 << i for i in range(width) if o[f"mem_addr[{i}]"])
            for o in observed
        ]
        assert pcs == [0, 1, 2, 3, 4]

    def test_reset_clears_pc(self, small_mcu):
        inputs = {port: False for port in small_mcu.input_ports()}
        if "tie1" in inputs:
            inputs["tie1"] = True
        run = dict(inputs, rst_n=True)
        halt = dict(inputs, rst_n=False)
        observed = simulate_sequence(small_mcu, [run, run, halt, run])
        width = 16
        pcs = [
            sum(1 << i for i in range(width) if o[f"mem_addr[{i}]"])
            for o in observed
        ]
        assert pcs[1] == 1
        assert pcs[3] == 0  # the reset cycle cleared the PC


class TestParams:
    def test_invalid_width_rejected(self):
        from repro.errors import NetlistError

        with pytest.raises(NetlistError):
            MicrocontrollerParams(width=4)

    def test_mult_wider_than_datapath_rejected(self):
        from repro.errors import NetlistError

        with pytest.raises(NetlistError):
            MicrocontrollerParams(width=16, mult_width=24)
