"""The content-hash graph cache: correctness and the warm-speed bound.

The acceptance bar from DESIGN.md §18: a warm run (unchanged source
hash) re-parses *nothing* (``parsed_files == 0``) and finishes in
under half the cold wall time.  The timing test runs against the real
``src/repro`` tree so the numbers mean something.
"""

import time
from pathlib import Path

import repro
from repro.lint.graph.cache import (
    build_graph_cached,
    load_cached_graph,
    source_tree_hash,
    store_graph,
)


def small_tree(tmp_path):
    package = tmp_path / "src" / "repro" / "flow"
    package.mkdir(parents=True)
    (package / "a.py").write_text("def f():\n    return 1\n")
    (package / "b.py").write_text("def g():\n    return 2\n")
    return tmp_path


class TestTreeHash:
    def test_hash_is_stable(self, tmp_path):
        tree = small_tree(tmp_path)
        first = source_tree_hash([tree / "src"], root=tree)
        second = source_tree_hash([tree / "src"], root=tree)
        assert first == second

    def test_hash_changes_with_content(self, tmp_path):
        tree = small_tree(tmp_path)
        before = source_tree_hash([tree / "src"], root=tree)
        (tree / "src" / "repro" / "flow" / "a.py").write_text(
            "def f():\n    return 3\n"
        )
        assert source_tree_hash([tree / "src"], root=tree) != before

    def test_hash_changes_with_new_file(self, tmp_path):
        tree = small_tree(tmp_path)
        before = source_tree_hash([tree / "src"], root=tree)
        (tree / "src" / "repro" / "flow" / "c.py").write_text("X = 1\n")
        assert source_tree_hash([tree / "src"], root=tree) != before


class TestCacheRoundTrip:
    def test_cold_then_warm(self, tmp_path):
        tree = small_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cold_graph, cold = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        assert not cold.from_cache
        assert cold.parsed_files == 2
        warm_graph, warm = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        assert warm.from_cache
        assert warm.parsed_files == 0
        assert warm.digest == cold.digest
        assert warm_graph.to_payload() == cold_graph.to_payload()

    def test_source_change_invalidates(self, tmp_path):
        tree = small_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        _graph, first = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        (tree / "src" / "repro" / "flow" / "a.py").write_text(
            "def f():\n    return 3\n"
        )
        _graph, second = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        assert not second.from_cache
        assert second.digest != first.digest

    def test_corrupt_cache_entry_rebuilds(self, tmp_path):
        tree = small_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        _graph, report = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        entry = cache_dir / f"{report.digest}.json"
        entry.write_text("{torn write")
        assert load_cached_graph(report.digest, cache_dir=cache_dir) is None
        _graph, again = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        assert not again.from_cache  # rebuilt, not misread

    def test_wrong_schema_version_is_rejected(self, tmp_path):
        import json

        tree = small_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        graph, _report = build_graph_cached(
            [tree / "src"], root=tree, cache_dir=cache_dir
        )
        store_graph("deadbeef", graph, cache_dir=cache_dir)
        entry = cache_dir / "deadbeef.json"
        payload = json.loads(entry.read_text())
        payload["schema"] = -1
        entry.write_text(json.dumps(payload))
        assert load_cached_graph("deadbeef", cache_dir=cache_dir) is None


class TestWarmSpeed:
    def test_warm_run_skips_parsing_and_halves_wall_time(self, tmp_path):
        """DESIGN.md §18 acceptance: warm < cold/2, zero files parsed."""
        source_root = Path(repro.__file__).parent
        cache_dir = tmp_path / "cache"

        start = time.perf_counter()
        _graph, cold = build_graph_cached([source_root], cache_dir=cache_dir)
        cold_wall = time.perf_counter() - start
        assert not cold.from_cache
        assert cold.parsed_files > 100  # the real tree, not a stub

        start = time.perf_counter()
        _graph, warm = build_graph_cached([source_root], cache_dir=cache_dir)
        warm_wall = time.perf_counter() - start
        assert warm.from_cache
        assert warm.parsed_files == 0
        assert warm_wall < cold_wall / 2, (
            f"warm {warm_wall:.3f}s not under half of cold {cold_wall:.3f}s"
        )
