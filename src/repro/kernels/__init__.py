"""Batched numerical kernels with a bit-identical scalar reference.

The repo's two hot loops — Monte-Carlo characterization and statistical
STA — each exist as a ``"vectorized"`` production kernel (whole-tensor
characterization, whole-level gather interpolation) and a ``"scalar"``
reference kernel (one surrogate/lookup call per element).  The active
kernel is selected via :func:`set_kernel` / :func:`use_kernel` (or
``FlowConfig(kernel=...)`` / ``REPRO_KERNEL`` / ``--kernel``); results
are bit-identical either way, so the choice never enters a fingerprint
or cache key.  See DESIGN.md §14 and ``tests/kernels``.
"""

from repro.kernels.dispatch import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    get_kernel,
    resolve_kernel,
    set_kernel,
    use_kernel,
    validate_kernel,
)
from repro.kernels.lut import LutBatch, batch_interpolate, interpolate_many_scalar
from repro.kernels.characterization import scalar_arc_energy, scalar_arc_tables
from repro.kernels.sta import evaluate_table_groups

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_NAMES",
    "LutBatch",
    "batch_interpolate",
    "evaluate_table_groups",
    "get_kernel",
    "interpolate_many_scalar",
    "resolve_kernel",
    "scalar_arc_energy",
    "scalar_arc_tables",
    "set_kernel",
    "use_kernel",
    "validate_kernel",
]
