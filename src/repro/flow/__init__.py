"""End-to-end flows: characterize -> tune -> synthesize -> measure.

:class:`~repro.flow.experiment.TuningFlow` is the façade the examples
and benchmarks drive: it owns the catalog, the statistical library, the
tuner and a memo of synthesis runs, and exposes the paper's comparison
metrics (sigma reduction vs area increase) per tuning method, parameter
and clock period.
"""

from repro.flow.experiment import FlowConfig, RunSummary, SynthesisRun, TuningFlow
from repro.flow.metrics import TuningComparison, best_under_area_cap, compare_runs
from repro.flow.pipeline import ArtifactPipeline, RunManifest, StageRecord
from repro.flow.minperiod import minimum_clock_period, period_area_sweep
from repro.flow.pathmc import PathMonteCarlo, pick_paths_by_depth
from repro.flow.yieldmodel import (
    required_uncertainty,
    timing_yield,
    uncertainty_reduction,
)

__all__ = [
    "ArtifactPipeline",
    "FlowConfig",
    "RunManifest",
    "RunSummary",
    "StageRecord",
    "SynthesisRun",
    "TuningComparison",
    "best_under_area_cap",
    "compare_runs",
    "minimum_clock_period",
    "period_area_sweep",
    "PathMonteCarlo",
    "pick_paths_by_depth",
    "required_uncertainty",
    "timing_yield",
    "uncertainty_reduction",
]
