"""STA forward/backward propagation."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.sta.engine import analyze
from repro.sta.graph import StaConfig, TimingGraph
from repro.sta.paths import worst_path


class TestChainTiming:
    def test_arrival_is_sum_of_stage_delays(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        path = worst_path(result)
        assert path.arrival == pytest.approx(sum(s.delay for s in path.steps))

    def test_endpoints_cover_ffs_and_ports(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        kinds = {e.kind for e in graph.endpoints}
        assert kinds == {"ff_data", "output_port"}

    def test_slack_decreases_with_tighter_clock(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        loose = analyze(graph, clock_period=5.0)
        tight = analyze(graph, clock_period=1.0)
        assert tight.wns < loose.wns
        assert loose.wns - tight.wns == pytest.approx(4.0, abs=1e-9)

    def test_guard_band_tightens_required(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        without = analyze(graph, clock_period=2.0, guard_band=0.0)
        with_gb = analyze(graph, clock_period=2.0, guard_band=0.3)
        assert with_gb.wns == pytest.approx(without.wns - 0.3)

    def test_ff_endpoint_accounts_setup(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        ff_endpoints = [e for e in graph.endpoints if e.kind == "ff_data"]
        assert all(e.setup > 0 for e in ff_endpoints)

    def test_met_flag(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        assert analyze(graph, clock_period=5.0).met
        assert not analyze(graph, clock_period=0.45).met

    def test_period_below_guard_band_rejected(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        with pytest.raises(TimingError):
            analyze(graph, clock_period=0.2, guard_band=0.3)


class TestRequiredTimes:
    def test_required_consistent_with_endpoint_slack(
        self, adder_netlist, statistical_library
    ):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        for endpoint, slack in zip(graph.endpoints, result.endpoint_slacks):
            net_slack = result.net_slack(endpoint.net_id)
            # the net's slack can only be tighter (other fanout paths)
            assert net_slack <= slack + 1e-9

    def test_wns_equals_min_endpoint_slack(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        assert result.wns == pytest.approx(result.endpoint_slacks.min())

    def test_tns_sums_negative_only(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=1.2)
        negative = result.endpoint_slacks[result.endpoint_slacks < 0]
        assert result.tns == pytest.approx(negative.sum())
        assert result.tns <= result.wns


class TestLoadsAndSlews:
    def test_loads_include_pin_caps_and_wire(self, chain_netlist, statistical_library):
        config = StaConfig()
        graph = TimingGraph(chain_netlist, statistical_library, config)
        # find the INV -> INV net: load = inv input cap + wire
        inv_cells = [i for i in chain_netlist if i.family == "INV"]
        first_inv = inv_cells[0]
        net_id = graph.net_ids[first_inv.net_of("Z")]
        sink_cell = statistical_library.cell(inv_cells[1].cell)
        expected = sink_cell.pin("A").capacitance + config.wire_cap_per_fanout
        assert graph.loads[net_id] == pytest.approx(expected)

    def test_output_port_load(self, chain_netlist, statistical_library):
        config = StaConfig()
        graph = TimingGraph(chain_netlist, statistical_library, config)
        port_net = chain_netlist.port_net("y")
        net_id = graph.net_ids[port_net]
        # nand output: drives the port and a DFF D pin
        dff_cell = next(
            i for i in chain_netlist.sequential_instances()
            if i.net_of("D") == port_net
        )
        d_cap = statistical_library.cell(dff_cell.cell).pin("D").capacitance
        expected = config.output_port_cap + d_cap + 2 * config.wire_cap_per_fanout
        assert graph.loads[net_id] == pytest.approx(expected)

    def test_slews_propagate_from_transitions(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        driven = graph.arc_dst
        assert np.all(result.slew[driven] > 0)

    def test_remap_tracks_cell_change(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        before = analyze(graph, clock_period=2.0)

        def inv_stage_delay(result):
            path = worst_path(result)
            return sum(
                s.delay
                for s in path.steps
                if chain_netlist.instance(s.instance).family == "INV"
            )

        before_delay = inv_stage_delay(before)
        for instance in chain_netlist:
            if instance.family == "INV":
                instance.cell = "INV_8"
        graph.remap()
        after = analyze(graph, clock_period=2.0)
        # the inverter stages themselves must get faster; the launcher
        # pays a bit more (bigger load), so wns only changes slightly
        assert inv_stage_delay(after) < before_delay
        assert after.wns != before.wns


class TestSequentialLaunch:
    def test_launch_delay_recorded(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        assert len(result.launches) == len(chain_netlist.sequential_instances())
        for launch in result.launches.values():
            assert launch.delay > 0

    def test_q_arrival_is_clk_to_q(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        for q_net, launch in result.launches.items():
            assert result.arrival[q_net] == pytest.approx(launch.delay)

    def test_unbound_instance_rejected(self, chain_netlist, statistical_library):
        chain_netlist.instances[next(iter(chain_netlist.instances))].cell = ""
        with pytest.raises(TimingError):
            TimingGraph(chain_netlist, statistical_library)
