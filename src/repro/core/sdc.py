"""Export tuning windows as synthesis tool constraints (SDC-style).

The paper's method hands the LUT restrictions to the synthesis tool as
per-pin bounds ("a minimum and maximum slew and load value can be
defined which effectively binds the synthesis tool", Sec. VI).  In
tool terms these are per-library-pin ``set_max_transition`` /
``set_max_capacitance`` (and the rarer ``set_min_*``) commands applied
to library cells; this module writes exactly that script, plus a
parser to read one back — so a tuning result can round-trip through
the same artifact a commercial flow would consume.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

from repro.core.restriction import SlewLoadWindow
from repro.core.tuner import TuningResult, WindowMap
from repro.errors import TuningError

_HEADER = "# slew/load windows from statistical library tuning"


def write_sdc(result: TuningResult) -> str:
    """Serialize a tuning result as an SDC-style constraint script.

    Excluded pins become ``set_dont_use`` on their cell — the classic
    coarse mechanism the paper's fine-grained method degrades to when
    no LUT region is acceptable.
    """
    lines = [
        _HEADER,
        f"# method: {result.method.name}  parameter: {result.parameter:g}",
    ]
    dont_use = sorted(result.excluded_cells)
    for cell in dont_use:
        lines.append(f"set_dont_use [get_lib_cells {cell}]")
    for (cell, pin), window in sorted(result.windows.items()):
        if window is None:
            continue  # covered by set_dont_use
        target = f"[get_lib_pins {cell}/{pin}]"
        lines.append(f"set_max_transition {window.max_slew:.6g} {target}")
        lines.append(f"set_max_capacitance {window.max_load:.6g} {target}")
        if window.min_slew > 0:
            lines.append(f"set_min_transition {window.min_slew:.6g} {target}")
        if window.min_load > 0:
            lines.append(f"set_min_capacitance {window.min_load:.6g} {target}")
    lines.append("")
    return "\n".join(lines)


_COMMAND_RE = re.compile(
    r"^set_(?P<kind>max|min)_(?P<what>transition|capacitance)\s+"
    r"(?P<value>[\d.eE+-]+)\s+\[get_lib_pins\s+(?P<cell>[\w]+)/(?P<pin>[\w]+)\]$"
)
_DONT_USE_RE = re.compile(r"^set_dont_use \[get_lib_cells\s+(?P<cell>[\w]+)\]$")


def parse_sdc(text: str) -> Tuple[WindowMap, Tuple[str, ...]]:
    """Parse a window script back into (windows, excluded cells).

    Pins without explicit min bounds get 0 (unrestricted below), the
    convention :func:`write_sdc` uses.
    """
    bounds: Dict[Tuple[str, str], Dict[str, float]] = {}
    excluded = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        dont_use = _DONT_USE_RE.match(line)
        if dont_use:
            excluded.append(dont_use.group("cell"))
            continue
        match = _COMMAND_RE.match(line)
        if match is None:
            raise TuningError(f"sdc line {line_no}: cannot parse {line!r}")
        key = (match.group("cell"), match.group("pin"))
        bound = f"{match.group('kind')}_{match.group('what')}"
        bounds.setdefault(key, {})[bound] = float(match.group("value"))

    windows: WindowMap = {}
    for key, pin_bounds in bounds.items():
        try:
            windows[key] = SlewLoadWindow(
                min_slew=pin_bounds.get("min_transition", 0.0),
                max_slew=pin_bounds["max_transition"],
                min_load=pin_bounds.get("min_capacitance", 0.0),
                max_load=pin_bounds["max_capacitance"],
            )
        except KeyError as missing:
            raise TuningError(
                f"pin {key[0]}/{key[1]}: missing {missing} in sdc"
            ) from None
    for cell in excluded:
        # excluded cells carry explicit None windows for every pin the
        # script knows about (callers merge with the library's pin list)
        for key in [k for k in windows if k[0] == cell]:
            windows[key] = None
    return windows, tuple(excluded)


def write_sdc_file(result: TuningResult, path: str) -> None:
    """Write the constraint script to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_sdc(result))
