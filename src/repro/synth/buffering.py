"""Fanout buffering with inverter pairs.

When a net's capacitance exceeds what its driver may legally drive —
because of the cell's own ``max_capacitance`` or a tuning window's
``max_load`` — the synthesizer splits the net: one inverter re-drives
groups of sinks through a second, polarity-restoring inverter per
group::

                 +--> INVb0 --> sinks group 0
    net --> INVa-+--> INVb1 --> sinks group 1
         (kept sinks stay on the original net)

This is exactly the mechanism the paper observes under tuning
("the most likely cause for the increase of inverter use is
buffering", Sec. VII.A).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SynthesisError
from repro.netlist.model import Netlist, PinRef

#: Instance-name prefix of synthesizer-inserted buffers (Fig. 9 shows
#: these as plain inverters, which they are).
BUFFER_PREFIX = "synbuf"


def split_fanout(
    netlist: Netlist,
    net_name: str,
    sink_groups: Sequence[Sequence[PinRef]],
    inverter_cell: str,
) -> List[str]:
    """Move sink groups behind inverter pairs; returns new instances.

    Sinks not mentioned in any group stay on the original net.  Port
    sinks cannot be moved (their polarity is the design's interface).
    """
    if not sink_groups:
        raise SynthesisError("split_fanout needs at least one sink group")
    net = netlist.net(net_name)
    for group in sink_groups:
        for sink in group:
            if sink.is_port:
                raise SynthesisError(
                    f"cannot buffer output port sink on net {net_name}"
                )
            if sink not in net.sinks:
                raise SynthesisError(f"{sink} is not a sink of {net_name}")

    created: List[str] = []
    first_name = netlist.unique_name(f"{BUFFER_PREFIX}_a")
    first_out = f"{first_name}.Z"
    netlist.add_instance(first_name, "INV", {"A": net_name, "Z": first_out})
    netlist.instance(first_name).cell = inverter_cell
    created.append(first_name)
    for group in sink_groups:
        second_name = netlist.unique_name(f"{BUFFER_PREFIX}_b")
        second_out = f"{second_name}.Z"
        netlist.add_instance(second_name, "INV", {"A": first_out, "Z": second_out})
        netlist.instance(second_name).cell = inverter_cell
        created.append(second_name)
        for sink in group:
            netlist.rewire_sink(net_name, sink, second_out)
    return created


def plan_groups(
    sinks: Sequence[PinRef], n_groups: int
) -> Tuple[List[PinRef], List[List[PinRef]]]:
    """Split movable sinks into ``n_groups`` round-robin groups.

    Returns (kept sinks, groups).  Port sinks are always kept on the
    original net.
    """
    if n_groups < 1:
        raise SynthesisError("need at least one buffer group")
    movable = [s for s in sinks if not s.is_port]
    kept = [s for s in sinks if s.is_port]
    if not movable:
        raise SynthesisError("net has no movable sinks to buffer")
    groups: List[List[PinRef]] = [[] for _ in range(n_groups)]
    for index, sink in enumerate(movable):
        groups[index % n_groups].append(sink)
    return kept, [g for g in groups if g]
