"""Statistical path analysis (paper eqs. 5-11)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TimingError
from repro.sta.engine import analyze
from repro.sta.graph import TimingGraph
from repro.sta.paths import extract_worst_paths, worst_path
from repro.sta.statistics import (
    design_statistics,
    path_sigma_correlated,
    path_statistics,
    step_sigma,
)


class TestConvolutionMath:
    def test_rho_zero_is_rss(self):
        """Eq. 10: sigma_path = sqrt(sum sigma_i^2)."""
        sigmas = [0.3, 0.4]
        assert path_sigma_correlated(sigmas, rho=0.0) == pytest.approx(0.5)

    def test_rho_one_is_linear_sum(self):
        """Perfect correlation degenerates to a plain sum (eq. 9)."""
        sigmas = [0.1, 0.2, 0.3]
        assert path_sigma_correlated(sigmas, rho=1.0) == pytest.approx(0.6)

    @given(
        st.lists(st.floats(0.001, 1.0), min_size=2, max_size=20),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_sigma_monotone_in_rho(self, sigmas, rho):
        low = path_sigma_correlated(sigmas, 0.0)
        high = path_sigma_correlated(sigmas, rho)
        top = path_sigma_correlated(sigmas, 1.0)
        assert low - 1e-12 <= high <= top + 1e-12

    @given(st.lists(st.floats(0.001, 1.0), min_size=2, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_identical_cells_scale_sqrt_n(self, sigmas):
        """Eq. 10 consequence the paper quotes: n identical cells give
        sigma * sqrt(n)."""
        sigma = sigmas[0]
        n = len(sigmas)
        path = path_sigma_correlated([sigma] * n, 0.0)
        assert path == pytest.approx(sigma * math.sqrt(n), rel=1e-9)

    def test_invalid_rho_rejected(self):
        with pytest.raises(TimingError):
            path_sigma_correlated([0.1], rho=2.0)


class TestPathStatistics:
    def test_mean_is_sum_of_step_delays(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        path = worst_path(result)
        stats = path_statistics(path, statistical_library)
        assert stats.mean == pytest.approx(sum(s.delay for s in path.steps))

    def test_sigma_is_rss_of_step_sigmas(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        path = worst_path(result)
        stats = path_statistics(path, statistical_library)
        expected = math.sqrt(sum(s**2 for s in stats.step_sigmas))
        assert stats.sigma == pytest.approx(expected)

    def test_step_sigma_positive(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        path = worst_path(result)
        for step in path.steps:
            assert step_sigma(statistical_library, step) > 0

    def test_three_sigma(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        stats = path_statistics(worst_path(result), statistical_library)
        assert stats.three_sigma == pytest.approx(stats.mean + 3 * stats.sigma)

    def test_nominal_library_rejected(self, chain_netlist, statistical_library,
                                      nominal_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        with pytest.raises(TimingError):
            path_statistics(worst_path(result), nominal_library)


class TestDesignStatistics:
    def test_eq11_rollup(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        design = design_statistics(paths, statistical_library)
        per_path = [path_statistics(p, statistical_library) for p in paths]
        assert design.mean == pytest.approx(sum(p.mean for p in per_path))
        assert design.sigma == pytest.approx(
            math.sqrt(sum(p.sigma**2 for p in per_path))
        )
        assert design.n_paths == len(paths)

    def test_rho_increases_design_sigma(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        independent = design_statistics(paths, statistical_library, rho=0.0)
        correlated = design_statistics(paths, statistical_library, rho=0.5)
        assert correlated.sigma > independent.sigma

    def test_empty_paths_rejected(self, statistical_library):
        with pytest.raises(TimingError):
            design_statistics([], statistical_library)

    def test_deeper_paths_not_necessarily_higher_sigma(
        self, adder_netlist, statistical_library
    ):
        """Paper Fig. 13: depth does not determine sigma — cell choice
        does.  With mixed drive strengths the correlation is loose."""
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        stats = [path_statistics(p, statistical_library) for p in paths]
        depths = np.array([s.depth for s in stats], dtype=float)
        sigmas = np.array([s.sigma for s in stats])
        # sanity: sigma generally grows with depth on a homogeneous
        # chain, but is not a function of it
        same_depth = {}
        for s in stats:
            same_depth.setdefault(s.depth, []).append(s.sigma)
        spread = [max(v) - min(v) for v in same_depth.values() if len(v) > 1]
        assert any(x > 0 for x in spread) or len(spread) == 0
        assert np.corrcoef(depths, sigmas)[0, 1] > 0  # chain: loose trend
