"""Writer emitting the Liberty subset the parser understands.

``parse_liberty(write_liberty(lib))`` reconstructs an equivalent
library; the round-trip is property-tested in
``tests/liberty/test_roundtrip.py``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.liberty.model import Cell, Library, Lut, Pin, PinDirection, TimingArc

_INDENT = "  "


def _fmt(value: float) -> str:
    """Format a float compactly but losslessly enough for round-trips."""
    return f"{value:.9g}"


def _format_index(values: np.ndarray) -> str:
    return '"' + ", ".join(_fmt(v) for v in values) + '"'


def _emit_lut(lines: List[str], name: str, lut: Lut, depth: int) -> None:
    pad = _INDENT * depth
    template = lut.template or "delay_template"
    lines.append(f"{pad}{name} ({template}) {{")
    lines.append(f"{pad}{_INDENT}index_1 ({_format_index(lut.index_1)});")
    lines.append(f"{pad}{_INDENT}index_2 ({_format_index(lut.index_2)});")
    lines.append(f"{pad}{_INDENT}values ( \\")
    for i, row in enumerate(lut.values):
        row_text = '"' + ", ".join(_fmt(v) for v in row) + '"'
        trailer = ", \\" if i < lut.values.shape[0] - 1 else " \\"
        lines.append(f"{pad}{_INDENT * 2}{row_text}{trailer}")
    lines.append(f"{pad}{_INDENT});")
    lines.append(f"{pad}}}")


def _emit_arc(lines: List[str], arc: TimingArc, depth: int) -> None:
    pad = _INDENT * depth
    lines.append(f"{pad}timing () {{")
    lines.append(f'{pad}{_INDENT}related_pin : "{arc.related_pin}";')
    lines.append(f"{pad}{_INDENT}timing_sense : {arc.timing_sense.value};")
    for slot in ("cell_rise", "cell_fall", "rise_transition", "fall_transition",
                 "sigma_rise", "sigma_fall", "power_rise", "power_fall",
                 "sigma_power_rise", "sigma_power_fall"):
        lut = getattr(arc, slot)
        if lut is not None:
            _emit_lut(lines, slot, lut, depth + 1)
    lines.append(f"{pad}}}")


def _emit_pin(lines: List[str], pin: Pin, depth: int) -> None:
    pad = _INDENT * depth
    lines.append(f"{pad}pin ({pin.name}) {{")
    lines.append(f"{pad}{_INDENT}direction : {pin.direction.value};")
    if pin.direction is PinDirection.INPUT:
        lines.append(f"{pad}{_INDENT}capacitance : {_fmt(pin.capacitance)};")
        if pin.is_clock:
            lines.append(f"{pad}{_INDENT}clock : true;")
    else:
        if pin.function:
            lines.append(f'{pad}{_INDENT}function : "{pin.function}";')
        if pin.max_capacitance:
            lines.append(f"{pad}{_INDENT}max_capacitance : {_fmt(pin.max_capacitance)};")
    for arc in pin.timing:
        _emit_arc(lines, arc, depth + 1)
    lines.append(f"{pad}}}")


def _emit_cell(lines: List[str], cell: Cell, depth: int) -> None:
    pad = _INDENT * depth
    lines.append(f"{pad}cell ({cell.name}) {{")
    lines.append(f"{pad}{_INDENT}area : {_fmt(cell.area)};")
    if cell.is_sequential:
        group = "latch" if cell.is_latch else "ff"
        lines.append(f"{pad}{_INDENT}{group} (IQ, IQN) {{")
        lines.append(f'{pad}{_INDENT * 2}clocked_on : "{cell.clock_pin}";')
        lines.append(f"{pad}{_INDENT * 2}setup_time : {_fmt(cell.setup_time)};")
        lines.append(f"{pad}{_INDENT}}}")
    for pin in cell.pins.values():
        _emit_pin(lines, pin, depth + 1)
    lines.append(f"{pad}}}")


def write_liberty(library: Library) -> str:
    """Serialize ``library`` to Liberty text."""
    lines: List[str] = []
    lines.append(f"library ({library.name}) {{")
    lines.append(f'{_INDENT}time_unit : "1{library.time_unit}";')
    lines.append(f"{_INDENT}capacitive_load_unit (1, {library.cap_unit.lower()});")
    if library.is_statistical:
        lines.append(f"{_INDENT}statistical : true;")
    oc = library.operating_conditions
    lines.append(f"{_INDENT}operating_conditions ({oc.name}) {{")
    lines.append(f"{_INDENT * 2}process : {_fmt(oc.process)};")
    lines.append(f"{_INDENT * 2}voltage : {_fmt(oc.voltage)};")
    lines.append(f"{_INDENT * 2}temperature : {_fmt(oc.temperature)};")
    lines.append(f"{_INDENT}}}")
    for template in library.templates.values():
        lines.append(f"{_INDENT}lu_table_template ({template.name}) {{")
        lines.append(f"{_INDENT * 2}variable_1 : {template.variable_1};")
        lines.append(f"{_INDENT * 2}variable_2 : {template.variable_2};")
        if template.index_1:
            lines.append(
                f"{_INDENT * 2}index_1 ({_format_index(np.asarray(template.index_1))});"
            )
        if template.index_2:
            lines.append(
                f"{_INDENT * 2}index_2 ({_format_index(np.asarray(template.index_2))});"
            )
        lines.append(f"{_INDENT}}}")
    for cell in library:
        _emit_cell(lines, cell, 1)
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def write_liberty_file(library: Library, path: str) -> None:
    """Write ``library`` to the file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_liberty(library))
