"""Kernel selection plumbing: globals, config, environment and CLI.

The kernel knob must behave exactly like ``n_workers``: an execution
choice that is validated loudly everywhere it can enter (constructor,
config, environment variable, CLI flag) and that never leaks past the
scope that set it.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.__main__ import _build_parser
from repro.characterization.characterize import Characterizer
from repro.errors import ConfigError
from repro.experiments.runner import build_context
from repro.flow.experiment import FlowConfig, TuningFlow
from repro.kernels.dispatch import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    get_kernel,
    resolve_kernel,
    set_kernel,
    use_kernel,
    validate_kernel,
)
from repro.sta.engine import analyze


class TestGlobalState:
    def test_default_kernel_is_vectorized(self):
        assert DEFAULT_KERNEL == "vectorized"
        assert set(KERNEL_NAMES) == {"scalar", "vectorized"}

    def test_set_kernel_returns_previous_and_installs(self):
        previous = set_kernel("scalar")
        try:
            assert get_kernel() == "scalar"
        finally:
            set_kernel(previous)
        assert get_kernel() == previous

    def test_use_kernel_restores_on_exit(self):
        before = get_kernel()
        with use_kernel("scalar") as active:
            assert active == "scalar"
            assert get_kernel() == "scalar"
        assert get_kernel() == before

    def test_use_kernel_restores_on_exception(self):
        before = get_kernel()
        with pytest.raises(RuntimeError):
            with use_kernel("scalar"):
                raise RuntimeError("boom")
        assert get_kernel() == before

    def test_resolve_kernel_defaults_to_active(self):
        with use_kernel("scalar"):
            assert resolve_kernel(None) == "scalar"
            assert resolve_kernel("vectorized") == "vectorized"

    @pytest.mark.parametrize("name", ["", "Vectorized", "simd", "scalar "])
    def test_bad_names_raise_config_error(self, name):
        with pytest.raises(ConfigError, match="unknown kernel"):
            validate_kernel(name)

    def test_set_kernel_rejects_bad_name_without_switching(self):
        before = get_kernel()
        with pytest.raises(ConfigError):
            set_kernel("bogus")
        assert get_kernel() == before


def test_kernels_package_imports_first():
    """`import repro.kernels` before anything else must not cycle.

    The test suite always pulls in `repro.characterization` first, which
    masks the `kernels.characterization <-> characterize` import cycle;
    a fresh interpreter with kernels imported first is the honest probe.
    """
    script = (
        "import repro.kernels, repro.characterization; "
        "print(repro.kernels.get_kernel())"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "vectorized"


class TestEntryPointValidation:
    def test_characterizer_validates_kernel_eagerly(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            Characterizer(kernel="bogus")

    def test_characterizer_adopts_active_kernel(self):
        with use_kernel("scalar"):
            assert Characterizer().kernel == "scalar"
        assert Characterizer(kernel="vectorized").kernel == "vectorized"

    def test_analyze_validates_kernel(self, chain_netlist, statistical_library):
        from repro.sta.graph import TimingGraph

        graph = TimingGraph(chain_netlist, statistical_library)
        with pytest.raises(ConfigError, match="unknown kernel"):
            analyze(graph, 2.0, kernel="bogus")


class TestFlowConfig:
    def test_default_matches_dispatch_default(self):
        assert FlowConfig().kernel == DEFAULT_KERNEL

    def test_from_environment_reads_repro_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert FlowConfig.from_environment().kernel == "scalar"
        monkeypatch.setenv("REPRO_KERNEL", "  VECTORIZED ")
        assert FlowConfig.from_environment().kernel == "vectorized"

    def test_from_environment_rejects_bad_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ConfigError, match="unknown kernel"):
            FlowConfig.from_environment()

    def test_tuning_flow_installs_config_kernel(self):
        with use_kernel("vectorized"):
            flow = TuningFlow(FlowConfig(kernel="scalar", cache=False))
            assert get_kernel() == "scalar"
            assert flow.characterizer.kernel == "scalar"

    def test_build_context_kernel_override(self):
        context = build_context(cache=False, kernel="scalar")
        assert context.flow.config.kernel == "scalar"
        with pytest.raises(ConfigError, match="unknown kernel"):
            build_context(cache=False, kernel="warp")


class TestCli:
    def test_run_accepts_kernel_flag(self):
        parser = _build_parser()
        args = parser.parse_args(["run", "--kernel", "scalar"])
        assert args.kernel == "scalar"
        assert parser.parse_args(["run"]).kernel is None

    def test_run_rejects_unknown_kernel(self, capsys):
        parser = _build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--kernel", "warp"])
        assert "invalid choice" in capsys.readouterr().err
