"""Synthesis constraints: clock, guard band, tuning windows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.restriction import SlewLoadWindow
from repro.errors import SynthesisError
from repro.units import GUARD_BAND_NS

#: (cell name, output pin) -> window (None = pin unusable).
WindowMap = Dict[Tuple[str, str], Optional[SlewLoadWindow]]


@dataclass
class SynthesisConstraints:
    """Everything the synthesizer must honor."""

    #: Target clock period (ns); the guard band is subtracted before
    #: timing is checked (paper Sec. VII: 300 ps).
    clock_period: float
    guard_band: float = GUARD_BAND_NS
    #: Tuning windows; ``None`` = untuned baseline synthesis.
    windows: Optional[WindowMap] = None
    #: Upsizing iterations before synthesis gives up on timing.
    max_sizing_iterations: int = 40
    #: Buffering (topology) rounds; the loop exits early once a round
    #: creates nothing, so this is a cap, not a cost.
    max_buffer_rounds: int = 6
    #: Area-recovery passes after timing is met.
    area_recovery_passes: int = 3
    #: Slack an instance must keep after a downsizing move (ns).
    downsize_margin: float = 0.05
    #: Global maximum net transition (ns), the standard design-rule
    #: constraint every flow carries; keeps relaxed designs from
    #: converging onto arbitrarily sloppy (and high-sigma) slews.
    max_transition: float = 0.55

    def __post_init__(self) -> None:
        if self.clock_period <= self.guard_band:
            raise SynthesisError(
                f"clock period {self.clock_period} ns must exceed the "
                f"guard band {self.guard_band} ns"
            )

    @property
    def effective_period(self) -> float:
        """Timing budget the paths are checked against."""
        return self.clock_period - self.guard_band

    def fingerprint_payload(self) -> Dict[str, float]:
        """Every scalar knob that can change a synthesis outcome.

        The tuning *windows* are deliberately excluded: the artifact
        pipeline fingerprints them through the tuning stage's own
        content hash (windows are a pure function of library + method +
        parameter), which keeps this payload small and canonical.
        """
        return {
            "clock_period": self.clock_period,
            "guard_band": self.guard_band,
            "max_sizing_iterations": self.max_sizing_iterations,
            "max_buffer_rounds": self.max_buffer_rounds,
            "area_recovery_passes": self.area_recovery_passes,
            "downsize_margin": self.downsize_margin,
            "max_transition": self.max_transition,
        }

    def window_for(self, cell_name: str, pin: str) -> Optional[SlewLoadWindow]:
        """Tuning window of a cell output pin.

        Returns ``None`` when no tuning is active (everything legal);
        raises when tuning is active and the pin was excluded — callers
        check usability via :meth:`is_cell_usable` first.
        """
        if self.windows is None:
            return None
        try:
            return self.windows[(cell_name, pin)]
        except KeyError:
            raise SynthesisError(
                f"tuning windows miss cell pin {cell_name}.{pin}"
            ) from None

    def is_cell_usable(self, cell_name: str, output_pins: Tuple[str, ...]) -> bool:
        """True when every output pin of the cell kept a window."""
        if self.windows is None:
            return True
        return all(self.windows.get((cell_name, pin)) is not None for pin in output_pins)
