"""Trace persistence: a process-safe JSONL exporter and its reader.

One trace is one JSON-Lines file: each line is a self-contained record
— ``{"type": "span", ...}`` for finished spans (see
:meth:`~repro.observe.tracer.Span.to_record`) or ``{"type":
"counters", ...}`` for counter/gauge flushes.  Counter records carry
*deltas*, so records from any number of processes sum to the true
totals.

Process safety relies on POSIX append semantics: every record is
written as a single ``os.write`` to a file descriptor opened with
``O_APPEND``, so concurrent writers — the ``ProcessPoolExecutor``
characterization and sweep workers — interleave whole lines and a
merged trace is always parseable.  No locks or temp files are needed,
and a worker killed mid-run loses at most its unflushed counters.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class JsonlExporter:
    """Appends trace records to a JSONL file, one line per record.

    The file opens lazily on first write (``truncate=True`` opens —
    and empties — it eagerly, so a fresh trace never mixes with stale
    worker output).  Safe to share across threads; safe to *reopen*
    from any number of processes.

    Truncate vs append — the reuse contract for one path:

    * ``truncate=True`` is for the exporter that *starts* a run: the
      CLI's ``--trace PATH`` and per-experiment ``--trace-dir``
      artifacts truncate, so reusing a path across runs keeps only the
      latest run.
    * ``truncate=False`` (the default) is for exporters that *join* a
      run in flight — worker processes reopening the parent's file —
      and must never empty it.

    Constructing an appending exporter on a recycled path therefore
    interleaves two runs (two trace ids) in one file; the analytics
    layer (``python -m repro trace summarize``) flags that, and
    :class:`Trace` keeps the distinct ids it saw.
    """

    def __init__(self, path: Union[str, Path], truncate: bool = False):
        self.path = Path(path)
        self._truncate = truncate
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        if truncate:
            self._ensure_open()

    def _ensure_open(self) -> int:
        if self._fd is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
            if self._truncate:
                flags |= os.O_TRUNC
                self._truncate = False
            self._fd = os.open(self.path, flags, 0o644)
        return self._fd

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a single atomic line write."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            os.write(self._ensure_open(), data)

    def flush(self) -> None:
        """No-op: ``os.write`` is unbuffered."""

    def close(self) -> None:
        """Close the underlying file descriptor (reopens on next write)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": str(self.path)}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["path"])


class MemorySink:
    """In-memory record sink (tests and ``--profile`` without a path)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record to the in-memory list."""
        with self._lock:
            self.records.append(record)

    def flush(self) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""


@dataclass
class Trace:
    """Parsed contents of a trace: spans plus merged counters/gauges.

    ``trace_ids`` keeps the distinct trace ids seen in file order —
    more than one means the file accumulated several runs (an
    appending exporter on a recycled path), which the analytics layer
    flags rather than silently summing unrelated runs.
    """

    spans: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, Any] = field(default_factory=dict)
    trace_ids: List[str] = field(default_factory=list)

    def span_names(self) -> List[str]:
        """Distinct span names, in first-appearance order."""
        seen: List[str] = []
        for span in self.spans:
            name = span.get("name", "?")
            if name not in seen:
                seen.append(name)
        return seen

    def total_wall(self, name: str) -> float:
        """Summed wall time of every span called ``name``.

        Unclosed spans (no ``wall`` recorded) count as zero.
        """
        return sum(
            s.get("wall") or 0.0 for s in self.spans if s.get("name") == name
        )


def merge_records(records: List[Dict[str, Any]]) -> Trace:
    """Fold raw trace records into a :class:`Trace`.

    Span records collect in file order; counter records (deltas) sum;
    gauge values take the last write.  Records that are not JSON
    objects (noise in a hand-edited or corrupted file) are skipped.
    """
    trace = Trace()
    for record in records:
        if not isinstance(record, dict):
            continue
        kind = record.get("type")
        trace_id = record.get("trace")
        if trace_id and trace_id not in trace.trace_ids:
            trace.trace_ids.append(trace_id)
        if kind == "span":
            trace.spans.append(record)
        elif kind == "counters":
            for name, value in record.get("counters", {}).items():
                trace.counters[name] = trace.counters.get(name, 0) + value
            trace.gauges.update(record.get("gauges", {}))
    return trace


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a JSONL trace file back into a :class:`Trace`.

    Unparseable lines (a record torn by a crashed writer) are skipped
    rather than failing the whole read.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return merge_records(records)
