"""Batched bilinear LUT interpolation (the STA hot path, vectorized).

:func:`~repro.liberty.lut.bilinear_interpolate_many` evaluates *one*
table at many query points.  The STA engine, however, needs *many
tables* at many points — every arc group of a topological level carries
its own delay/transition LUTs over its own (per-cell) load axis.
:class:`LutBatch` stacks same-shape tables into one (T, n_slew, n_load)
array so a whole level resolves in a single gather-based interpolation.

Bit-identity with the scalar reference is by construction:

* ``searchsorted(axis, v, side="left")`` equals the count of axis
  entries strictly below ``v``, which is what the batched bracket
  computes (``(axes < v[:, None]).sum(axis=1)``);
* clamping, the interpolation fractions and the blend are written as
  the *same* elementwise expressions as the scalar path, and IEEE-754
  elementwise arithmetic does not depend on array shape.

:func:`interpolate_many_scalar` is the honest reference the property
tests pin both implementations to: one
:func:`~repro.liberty.lut.bilinear_interpolate` call per element.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import LibertyError
from repro.liberty.lut import bilinear_interpolate
from repro.liberty.model import Lut


class LutBatch:
    """A stack of same-shape LUTs addressable by table id.

    Axes may differ between tables (the load grid is per-cell); only
    the *shape* must agree so the stacked arrays are rectangular.
    """

    __slots__ = ("slew_axes", "load_axes", "values")

    def __init__(self, tables: Sequence[Lut]) -> None:
        if not tables:
            raise LibertyError("LutBatch needs at least one table")
        shape = tables[0].values.shape
        for table in tables[1:]:
            if table.values.shape != shape:
                raise LibertyError(
                    f"LutBatch tables must share one grid shape; got "
                    f"{table.values.shape} vs {shape}"
                )
        #: (T, n_slew) input-slew axes, one row per table.
        self.slew_axes = np.stack([table.index_1 for table in tables])
        #: (T, n_load) output-load axes, one row per table.
        self.load_axes = np.stack([table.index_2 for table in tables])
        #: (T, n_slew, n_load) table values.
        self.values = np.stack([table.values for table in tables])

    def __len__(self) -> int:
        return int(self.values.shape[0])


def batch_interpolate(
    batch: LutBatch,
    table_ids: np.ndarray,
    slews: np.ndarray,
    loads: np.ndarray,
) -> np.ndarray:
    """Interpolate ``batch.values[table_ids[q]]`` at each query ``q``.

    ``table_ids``, ``slews`` and ``loads`` are flat, equally long query
    arrays; the result is the per-query interpolated value, bit-identical
    to calling :func:`~repro.liberty.lut.bilinear_interpolate_many` (or
    the scalar lookup) table by table.
    """
    tid = np.asarray(table_ids, dtype=np.intp)
    slews = np.asarray(slews, dtype=float)
    loads = np.asarray(loads, dtype=float)
    s_axes = batch.slew_axes[tid]  # (Q, n_slew)
    l_axes = batch.load_axes[tid]  # (Q, n_load)
    s = np.clip(slews, s_axes[:, 0], s_axes[:, -1])
    load = np.clip(loads, l_axes[:, 0], l_axes[:, -1])

    # row-wise searchsorted(side="left"): entries strictly below s
    si = np.clip(np.sum(s_axes < s[:, None], axis=1), 1, s_axes.shape[1] - 1)
    li = np.clip(np.sum(l_axes < load[:, None], axis=1), 1, l_axes.shape[1] - 1)
    rows = np.arange(tid.shape[0])
    s0, s1 = s_axes[rows, si - 1], s_axes[rows, si]
    l0, l1 = l_axes[rows, li - 1], l_axes[rows, li]
    ts = (s - s0) / (s1 - s0)
    tl = (load - l0) / (l1 - l0)

    v = batch.values
    q00 = v[tid, si - 1, li - 1]
    q01 = v[tid, si - 1, li]
    q10 = v[tid, si, li - 1]
    q11 = v[tid, si, li]
    top = q00 * (1.0 - tl) + q01 * tl
    bot = q10 * (1.0 - tl) + q11 * tl
    return top * (1.0 - ts) + bot * ts


def interpolate_many_scalar(
    lut: Lut, slews: np.ndarray, loads: np.ndarray
) -> np.ndarray:
    """Reference: one scalar ``bilinear_interpolate`` call per element.

    Broadcasts ``slews`` against ``loads`` exactly like the vectorized
    :func:`~repro.liberty.lut.bilinear_interpolate_many`, then walks
    the broadcast elementwise.
    """
    s, load = np.broadcast_arrays(
        np.asarray(slews, dtype=float), np.asarray(loads, dtype=float)
    )
    out = np.empty(s.shape)
    flat = out.ravel()
    flat_s = s.ravel()
    flat_l = load.ravel()
    for index in range(flat_s.size):
        flat[index] = bilinear_interpolate(
            lut, float(flat_s[index]), float(flat_l[index])
        )
    return out
