"""Bench: Fig. 15 — corner Monte Carlo of extracted paths."""

from conftest import show

from repro.experiments import fig15_corners


def test_fig15_corners(benchmark, context):
    result = benchmark.pedantic(
        fig15_corners.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    by_path = {}
    for row in result.rows:
        by_path.setdefault(row["path"], {})[row["corner"]] = row
    assert set(by_path) == {"short", "medium", "long"}
    for corners in by_path.values():
        # fast < typical < slow in mean delay
        assert corners["fast"]["mean_ns"] < corners["typical"]["mean_ns"]
        assert corners["typical"]["mean_ns"] < corners["slow"]["mean_ns"]
        # mean and sigma scale by (roughly) the same factor — the
        # paper's argument that tuning transfers across corners
        for name in ("fast", "slow"):
            row = corners[name]
            assert abs(row["mean_rel"] - row["sigma_rel"]) < 0.12
    # depths span short..long as requested
    depths = [rows["typical"]["depth"] for rows in by_path.values()]
    assert depths[0] < depths[-1]
