"""Fig. 7 — all cell-delay sigma LUTs of the TT library combined.

The paper's surface plot becomes a per-index-position envelope: for
each (slew, load) grid position, the min / median / max sigma across
every arc of every cell — the landscape the Table 2 bounds cut into.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult


def run(context: ExperimentContext) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    library = context.flow.statistical_library
    stacks = []
    n_tables = 0
    for cell in library:
        for _pin, arc in cell.arcs():
            for table in arc.sigma_tables():
                stacks.append(table.values)
                n_tables += 1
    stacked = np.stack(stacks)

    rows = []
    shape = stacked.shape[1:]
    for i in (0, shape[0] // 2, shape[0] - 1):
        for j in (0, shape[1] // 2, shape[1] - 1):
            rows.append({
                "slew_idx": i,
                "load_idx": j,
                "sigma_min": float(stacked[:, i, j].min()),
                "sigma_median": float(np.median(stacked[:, i, j])),
                "sigma_max": float(stacked[:, i, j].max()),
            })
    ceiling_cut = {
        ceiling: float((stacked <= ceiling).mean())
        for ceiling in (0.04, 0.03, 0.02, 0.01)
    }
    return ExperimentResult(
        experiment_id="fig07",
        title=f"Library-wide sigma envelope over {n_tables} sigma LUTs",
        rows=rows,
        notes=(
            "fraction of all LUT entries under each Table 2 ceiling: "
            + ", ".join(f"{c:g}ns: {f:.0%}" for c, f in ceiling_cut.items())
        ),
    )
