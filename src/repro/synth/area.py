"""Area accounting and comparison reports."""

from __future__ import annotations

from typing import Dict

from repro.liberty.model import Library
from repro.netlist.model import Netlist


def total_area(netlist: Netlist, library: Library) -> float:
    """Total bound-cell area (um^2)."""
    return sum(library.cell(instance.cell).area for instance in netlist)


def area_by_family(netlist: Netlist, library: Library) -> Dict[str, float]:
    """Area contribution per cell family."""
    breakdown: Dict[str, float] = {}
    for instance in netlist:
        area = library.cell(instance.cell).area
        breakdown[instance.family] = breakdown.get(instance.family, 0.0) + area
    return dict(sorted(breakdown.items(), key=lambda kv: -kv[1]))


def relative_area_increase(baseline_area: float, tuned_area: float) -> float:
    """Fractional area increase vs a baseline (paper Fig. 10 top)."""
    return (tuned_area - baseline_area) / baseline_area
