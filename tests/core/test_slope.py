"""Slope tables (paper eqs. 12-13)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp
from hypothesis import strategies as st

from repro.core.slope import (
    load_slope_table,
    load_slope_table_physical,
    slew_slope_table,
    slew_slope_table_physical,
)
from repro.errors import TuningError
from repro.liberty.model import Lut


VALUES = np.array([
    [1.0, 2.0, 4.0],
    [2.0, 3.0, 6.0],
    [5.0, 5.0, 9.0],
])


class TestEquations:
    def test_slew_slope_is_row_difference(self):
        slope = slew_slope_table(VALUES)
        assert np.allclose(slope[1], VALUES[1] - VALUES[0])
        assert np.allclose(slope[2], VALUES[2] - VALUES[1])

    def test_load_slope_is_column_difference(self):
        slope = load_slope_table(VALUES)
        assert np.allclose(slope[:, 1], VALUES[:, 1] - VALUES[:, 0])
        assert np.allclose(slope[:, 2], VALUES[:, 2] - VALUES[:, 1])

    def test_first_row_and_column_zero_filled(self):
        """Paper: "the first row or column ... is filled with zeros"."""
        assert np.all(slew_slope_table(VALUES)[0] == 0)
        assert np.all(load_slope_table(VALUES)[:, 0] == 0)

    def test_constant_lut_has_zero_slopes(self):
        flat = np.full((4, 5), 3.3)
        assert np.all(slew_slope_table(flat) == 0)
        assert np.all(load_slope_table(flat) == 0)

    @given(hnp.arrays(np.float64, (5, 6), elements=st.floats(0, 10)))
    @settings(max_examples=60, deadline=None)
    def test_slopes_reconstruct_table(self, values):
        """Cumulative-summing the slope tables recovers the LUT."""
        slew = slew_slope_table(values)
        recovered = values[0] + slew.cumsum(axis=0) - slew[0]
        assert np.allclose(recovered, values)

    def test_non_2d_rejected(self):
        with pytest.raises(TuningError):
            slew_slope_table(np.zeros(4))


class TestPhysicalVariants:
    def test_physical_slopes_scale_by_step(self):
        lut = Lut((0.1, 0.3, 0.7), (0.001, 0.002, 0.004), VALUES)
        phys = slew_slope_table_physical(lut)
        index_steps = slew_slope_table(VALUES)
        assert phys[1, 0] == pytest.approx(index_steps[1, 0] / 0.2)
        assert phys[2, 0] == pytest.approx(index_steps[2, 0] / 0.4)
        phys_load = load_slope_table_physical(lut)
        expected = (VALUES[0, 1] - VALUES[0, 0]) / 0.001
        assert phys_load[0, 1] == pytest.approx(expected)
