"""Markdown grid report of one sweep run.

Three sections: a header summarizing the grid shape and how much of it
was actually recomputed (the incremental story in two numbers), one
recharacterization grid per design showing each ``method x clock``
cell's status, and the flat results table with every point's sigma
reduction and area increase.  The output is plain GitHub-flavored
markdown — CI uploads it as the sweep artifact.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sweep.driver import PointResult, SweepResult

__all__ = ["render_sweep_report"]

#: Status -> grid-cell mark (counts annotate partially warm cells).
_MARKS = {"hit": "hit", "skip": "skip", "run": "run"}


def _status_cell(statuses: List[str]) -> str:
    """Summarize the statuses of one (design, method, clock) cell —
    one word when uniform, per-status counts when mixed."""
    unique = sorted(set(statuses))
    if len(unique) == 1:
        count = len(statuses)
        mark = _MARKS[unique[0]]
        return mark if count == 1 else f"{mark} x{count}"
    return ", ".join(
        f"{_MARKS[status]} x{statuses.count(status)}" for status in unique
    )


def _design_grid(design: str, results: List[PointResult]) -> List[str]:
    """The ``method x clock`` status grid of one design."""
    methods = list(dict.fromkeys(r.point.method for r in results))
    clocks = sorted(set(r.point.clock_period for r in results))
    lines = [
        f"### {design}",
        "",
        "| method | " + " | ".join(f"{c:g} ns" for c in clocks) + " |",
        "|---" * (len(clocks) + 1) + "|",
    ]
    for method in methods:
        cells = []
        for clock in clocks:
            statuses = [
                r.status
                for r in results
                if r.point.method == method and r.point.clock_period == clock
            ]
            cells.append(_status_cell(statuses) if statuses else "-")
        lines.append(f"| {method} | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def render_sweep_report(result: SweepResult) -> str:
    """Render the full markdown report of one sweep run."""
    counts = result.counts
    total = len(result.results)
    lines = [
        "# Design-family sweep",
        "",
        f"- grid: {len(result.grid.designs)} designs x "
        f"{total // max(1, len(result.grid.designs))} points each "
        f"= {total} points",
        f"- backend: {result.backend}",
        f"- recomputed: {counts['run']} run, {counts['skip']} skip "
        f"(shared baseline only), {counts['hit']} hit "
        f"({result.scheduled} tasks dispatched)",
        f"- statistical library: `{result.statlib_key[:12]}`",
        f"- wall: {result.wall:.1f}s",
        "",
        "## Recharacterization",
        "",
    ]
    by_design: Dict[str, List[PointResult]] = {}
    for point_result in result.results:
        by_design.setdefault(point_result.point.design, []).append(
            point_result
        )
    for design, design_results in by_design.items():
        lines.extend(_design_grid(design, design_results))
    lines.extend(
        [
            "## Results",
            "",
            "| design | method | parameter | clock (ns) | status "
            "| sigma | area |",
            "|---|---|---|---|---|---|---|",
        ]
    )
    for point_result in result.results:
        point = point_result.point
        comparison = point_result.comparison
        sigma = (
            f"{comparison.sigma_reduction:+.1%}"
            if comparison.tuned_met
            else "infeasible"
        )
        lines.append(
            f"| {point.design} | {point.method} | {point.parameter:g} "
            f"| {point.clock_period:g} | {point_result.status} "
            f"| {sigma} | {comparison.area_increase:+.1%} |"
        )
    lines.append("")
    return "\n".join(lines)
