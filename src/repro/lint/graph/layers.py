"""Loading ``[tool.repro-lint]`` from ``pyproject.toml``.

The layering map lives next to the rest of the project metadata so the
architecture is declared once, in the file everyone already reads:

.. code-block:: toml

    [tool.repro-lint]
    layers = [
        ["repro.errors", "repro.units"],
        ["repro.cells", "repro.liberty"],
        # ... lowest first; same-layer imports are allowed
    ]

``tomllib`` only exists on Python 3.11+ and the CI matrix starts at
3.10, so a tiny fallback parser handles the one shape this section
uses: ``key = <TOML array>`` — which happens to be a valid Python
literal, so bracket-balancing plus :func:`ast.literal_eval` is exact
for it (no new dependency, no hand-rolled string machinery).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lint.graph.rules import GraphSettings

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    tomllib = None  # type: ignore[assignment]

#: The pyproject table the graph rules read.
SECTION = "repro-lint"


#: A TOML table header (``[tool.x]`` / ``[[tool.y]]``) — bare dotted
#: names only, which is what tells it apart from an array element like
#: ``["repro.sta"],`` continuing a multi-line value.
_HEADER = re.compile(r"^\[\[?[A-Za-z0-9_.\-]+\]?\]$")


def _parse_section_fallback(text: str) -> Dict[str, Any]:
    """Parse ``[tool.repro-lint]`` without :mod:`tomllib`.

    Handles ``key = <array/str/number>`` with arrays spanning lines;
    enough for this section, not a general TOML parser.
    """
    collected: List[str] = []
    in_section = False
    for line in text.splitlines():
        stripped = line.strip()
        if _HEADER.match(stripped):
            in_section = stripped == f"[tool.{SECTION}]"
            continue
        if in_section:
            collected.append(line)
    data: Dict[str, Any] = {}
    index = 0
    while index < len(collected):
        line = collected[index].split("#", 1)[0]
        index += 1
        if "=" not in line:
            continue
        key, _, expression = line.partition("=")
        depth = expression.count("[") - expression.count("]")
        while depth > 0 and index < len(collected):
            continuation = collected[index].split("#", 1)[0]
            expression += "\n" + continuation
            depth += continuation.count("[") - continuation.count("]")
            index += 1
        try:
            data[key.strip()] = ast.literal_eval(expression.strip())
        except (SyntaxError, ValueError):
            continue
    return data


def load_lint_table(pyproject: Path) -> Dict[str, Any]:
    """The raw ``[tool.repro-lint]`` mapping (empty when absent)."""
    if not pyproject.is_file():
        return {}
    text = pyproject.read_text(encoding="utf-8")
    if tomllib is not None:
        try:
            parsed = tomllib.loads(text)
        except tomllib.TOMLDecodeError:
            return {}
        table = parsed.get("tool", {}).get(SECTION, {})
        return dict(table) if isinstance(table, dict) else {}
    return _parse_section_fallback(text)


def load_graph_settings(pyproject: Optional[Path] = None) -> GraphSettings:
    """Graph-rule settings for a repo (defaults when unconfigured)."""
    settings = GraphSettings()
    if pyproject is None:
        pyproject = Path("pyproject.toml")
    table = load_lint_table(pyproject)
    layers = table.get("layers")
    if isinstance(layers, list):
        settings.layers = [
            [str(package) for package in group]
            for group in layers
            if isinstance(group, list)
        ]
    async_packages = table.get("async-packages")
    if isinstance(async_packages, list):
        settings.async_packages = tuple(str(p) for p in async_packages)
    det_packages = table.get("det-packages")
    if isinstance(det_packages, list):
        settings.det_packages = tuple(str(p) for p in det_packages)
    return settings
