"""Console views of metric snapshots: one-shot listing + live panel.

Two renderers over :class:`~repro.observe.metrics.MetricsSnapshot`:

* :func:`render_console` — the full instrument listing the
  ``python -m repro metrics`` CLI prints by default: every family,
  every sample, histograms summarized as count/mean/p50/p95/p99.
* :func:`render_dashboard` — the curated serve panel ``--watch``
  refreshes in place: request rate, latency percentiles from
  histogram buckets, outcome mix, coalescing, store hit ratios and
  queue depth.  Rates need two snapshots; the first frame shows
  totals only.

:func:`fetch_metrics` pulls ``GET /metrics`` from a live server with
stdlib ``http.client`` and parses the exposition text back into a
snapshot — the CLI and the watch loop share it.
"""

from __future__ import annotations

import http.client
import time
from typing import Callable, List, Optional, TextIO, Tuple

from repro.errors import ObservabilityError
from repro.observe.metrics import (
    FamilySnapshot,
    HistogramValue,
    MetricsSnapshot,
    histogram_quantile,
    parse_prometheus,
)

#: ANSI: clear screen + home — the in-place refresh for ``--watch``.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def fetch_metrics(
    host: str, port: int, timeout: float = 5.0
) -> MetricsSnapshot:
    """``GET /metrics`` from a live server, parsed into a snapshot."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read().decode("utf-8", errors="replace")
        if response.status != 200:
            raise ObservabilityError(
                f"GET /metrics on {host}:{port} returned {response.status}"
            )
        return parse_prometheus(body)
    except OSError as error:
        raise ObservabilityError(
            f"cannot reach metrics endpoint {host}:{port}: {error}"
        ) from error
    finally:
        connection.close()


# -- snapshot arithmetic ----------------------------------------------


def _counter_sum(
    snapshot: MetricsSnapshot, name: str, **match: str
) -> float:
    """Sum a counter family's samples whose labels match ``match``."""
    family = snapshot.families.get(name)
    if family is None:
        return 0.0
    total = 0.0
    for key, value in family.samples.items():
        if isinstance(value, HistogramValue):
            continue
        labels = dict(zip(family.labelnames, key))
        if all(labels.get(ln) == lv for ln, lv in match.items()):
            total += value
    return total


def _histogram_sum(
    snapshot: MetricsSnapshot, name: str
) -> Tuple[Optional[HistogramValue], Tuple[float, ...]]:
    """Merge every child of a histogram family into one distribution."""
    family = snapshot.families.get(name)
    if family is None:
        return None, ()
    merged: Optional[HistogramValue] = None
    for value in family.samples.values():
        if not isinstance(value, HistogramValue):
            continue
        merged = value if merged is None else merged.merged(value)
    return merged, family.buckets


def _gauge_value(snapshot: MetricsSnapshot, name: str) -> Optional[float]:
    family = snapshot.families.get(name)
    if family is None or not family.samples:
        return None
    value = next(iter(family.samples.values()))
    return None if isinstance(value, HistogramValue) else value


def _ratio(hits: float, misses: float) -> str:
    lookups = hits + misses
    if lookups <= 0:
        return "n/a"
    return f"{100.0 * hits / lookups:.1f}% of {int(lookups)}"


# -- renderers ---------------------------------------------------------


def _histogram_row(value: HistogramValue, buckets: Tuple[float, ...]) -> str:
    if value.count <= 0:
        return "count=0"
    mean = value.total / value.count
    quantiles = " ".join(
        f"p{int(q * 100)}<={histogram_quantile(value, buckets, q) * 1e3:.3g}ms"
        for q in (0.5, 0.95, 0.99)
    )
    return f"count={value.count} mean={mean * 1e3:.3g}ms {quantiles}"


def _family_lines(family: FamilySnapshot) -> List[str]:
    lines = [f"{family.name} ({family.kind}) — {family.help}"]
    for key in sorted(family.samples):
        value = family.samples[key]
        labels = (
            "{" + ",".join(
                f'{ln}="{lv}"'
                for ln, lv in zip(family.labelnames, key)
            ) + "}"
            if family.labelnames
            else ""
        )
        if isinstance(value, HistogramValue):
            rendered = _histogram_row(value, family.buckets)
        elif float(value).is_integer():
            rendered = str(int(value))
        else:
            rendered = f"{value:.6g}"
        lines.append(f"  {labels or '(no labels)'} {rendered}")
    return lines


def render_console(snapshot: MetricsSnapshot) -> str:
    """The full listing: every family and sample, one block each."""
    if not snapshot.families:
        return "no metrics recorded\n"
    blocks = [
        "\n".join(_family_lines(snapshot.families[name]))
        for name in sorted(snapshot.families)
    ]
    return "\n".join(blocks) + "\n"


def render_dashboard(
    snapshot: MetricsSnapshot,
    previous: Optional[MetricsSnapshot] = None,
    interval: Optional[float] = None,
) -> str:
    """The curated live panel ``--watch`` refreshes in place."""
    lines: List[str] = ["repro serve — live metrics", ""]
    requests = _counter_sum(snapshot, "repro_serve_requests_total")
    if previous is not None and interval and interval > 0:
        rate = (
            requests
            - _counter_sum(previous, "repro_serve_requests_total")
        ) / interval
        lines.append(f"requests   total={int(requests)}  rate={rate:.1f}/s")
    else:
        lines.append(f"requests   total={int(requests)}")
    outcomes = []
    for outcome in ("warm", "computed", "coalesced", "error", "rejected"):
        count = _counter_sum(
            snapshot, "repro_serve_requests_total", outcome=outcome
        )
        if count:
            outcomes.append(f"{outcome}={int(count)}")
    if outcomes:
        lines.append("outcomes   " + "  ".join(outcomes))
    latency, buckets = _histogram_sum(snapshot, "repro_serve_request_seconds")
    if latency is not None and latency.count > 0:
        lines.append("latency    " + _histogram_row(latency, buckets))
    leaders = _counter_sum(
        snapshot, "repro_serve_coalesce_total", role="leader"
    )
    followers = _counter_sum(
        snapshot, "repro_serve_coalesce_total", role="follower"
    )
    if leaders or followers:
        lines.append(
            f"coalesce   leaders={int(leaders)}  followers={int(followers)}"
        )
    artifact_hits = _counter_sum(
        snapshot, "repro_store_artifact_total", event="hit"
    )
    artifact_misses = _counter_sum(
        snapshot, "repro_store_artifact_total", event="miss"
    )
    library_hits = _counter_sum(
        snapshot, "repro_store_library_total", event="hit"
    )
    library_misses = _counter_sum(
        snapshot, "repro_store_library_total", event="miss"
    )
    lines.append(
        "stores     artifact-hit "
        + _ratio(artifact_hits, artifact_misses)
        + "  library-hit "
        + _ratio(library_hits, library_misses)
    )
    pending = _gauge_value(snapshot, "repro_dispatch_pending")
    capacity = _gauge_value(snapshot, "repro_dispatch_capacity")
    inflight = _gauge_value(snapshot, "repro_serve_inflight_requests")
    queue_parts = []
    if pending is not None or capacity is not None:
        queue_parts.append(
            f"queue={int(pending or 0)}/{int(capacity or 0)}"
        )
    if inflight is not None:
        queue_parts.append(f"inflight={int(inflight)}")
    if queue_parts:
        lines.append("load       " + "  ".join(queue_parts))
    completed = _counter_sum(
        snapshot, "repro_backend_tasks_total", event="completed"
    )
    if completed:
        lines.append(f"backend    tasks-completed={int(completed)}")
    return "\n".join(lines) + "\n"


def watch(
    fetch: Callable[[], MetricsSnapshot],
    out: TextIO,
    interval: float = 2.0,
    iterations: Optional[int] = None,
) -> None:
    """Refresh the dashboard in place every ``interval`` seconds.

    ``iterations=None`` runs until interrupted (the CLI catches
    ``KeyboardInterrupt``); a finite count is the testable path.
    """
    previous: Optional[MetricsSnapshot] = None
    previous_at: Optional[float] = None
    frame = 0
    while iterations is None or frame < iterations:
        snapshot = fetch()
        now = time.monotonic()
        elapsed = (
            None if previous_at is None else max(now - previous_at, 1e-9)
        )
        out.write(
            CLEAR_SCREEN + render_dashboard(snapshot, previous, elapsed)
        )
        out.flush()
        previous, previous_at = snapshot, now
        frame += 1
        if iterations is None or frame < iterations:
            time.sleep(interval)
