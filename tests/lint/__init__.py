"""Tests for the static-analysis layer (:mod:`repro.lint`)."""
