"""Bench: Fig. 3 — bilinear interpolation (eqs. 2-4)."""

from conftest import show

from repro.experiments import fig03_bilinear


def test_fig03_bilinear(benchmark, context):
    result = benchmark(fig03_bilinear.run, context)
    show(result)
    for row in result.rows:
        assert abs(row["X_interp"] - row["X_eq2_4"]) < 1e-12
