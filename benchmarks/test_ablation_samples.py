"""Ablation: statistical-library accuracy vs Monte-Carlo sample count.

Paper Sec. VII.C: sigma estimated from 50 libraries "deviate[s] to an
upper-bound of two times" vs long simulations; "using more MC samples
... would reduce this error but this is future work."  We implement the
future work: the sigma estimate's relative error against an N=2000
reference shrinks roughly as 1/sqrt(N).
"""

import numpy as np
from conftest import show

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer
from repro.experiments.base import ExperimentResult

_CELLS = ["INV_1", "INV_4", "ND2_2", "NR2_2", "ADDF_4"]


def _sigma_vector(characterizer, specs, n_samples, seed):
    library = characterizer.statistical_library(specs, n_samples=n_samples, seed=seed)
    values = []
    for cell in library:
        for _pin, arc in cell.arcs():
            values.append(arc.sigma_fall.values.ravel())
    return np.concatenate(values)


def test_ablation_sample_count(benchmark, context):
    specs = [s for s in build_catalog(families=["INV", "ND2", "NR2", "ADDF"])
             if s.name in _CELLS]
    characterizer = Characterizer()
    reference = _sigma_vector(characterizer, specs, 2000, seed=99)

    def sweep():
        rows = []
        for n in (10, 30, 50, 100, 300):
            errors = []
            for seed in (1, 2, 3):
                estimate = _sigma_vector(characterizer, specs, n, seed=seed)
                errors.append(float(np.abs(estimate / reference - 1).mean()))
            rows.append({
                "n_samples": n,
                "mean_rel_error": round(float(np.mean(errors)), 4),
                "expected_1_over_sqrt_2n": round(1.0 / np.sqrt(2 * n), 4),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment_id="ablation-samples",
        title="Sigma-estimate error vs MC sample count (paper's future work)",
        rows=rows,
        notes="error ~ 1/sqrt(2N): quadrupling the samples halves the error",
    )
    show(result)
    errors = [r["mean_rel_error"] for r in rows]
    assert errors == sorted(errors, reverse=True)
    # paper used N=50: the error there is substantial, which is exactly
    # the inaccuracy Sec. VII.C reports
    n50 = next(r for r in rows if r["n_samples"] == 50)
    assert 0.02 < n50["mean_rel_error"] < 0.25
