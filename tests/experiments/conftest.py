"""Miniature experiment context shared by the experiment tests.

The design is tiny (hundreds of gates) so the synthesis-backed
experiments run in seconds; the benchmark suite exercises the same
experiments at the quick/paper scales.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentContext
from repro.flow.experiment import FlowConfig, TuningFlow
from repro.netlist.generators.microcontroller import MicrocontrollerParams


@pytest.fixture(scope="session")
def tiny_context():
    config = FlowConfig(
        design=MicrocontrollerParams(
            width=12,
            regfile_bits=2,
            mult_width=8,
            n_timers=1,
            timer_width=8,
            control_gates=400,
            status_width=16,
            n_uarts=1,
            gpio_width=4,
        ),
        n_samples=15,
    )
    return ExperimentContext(TuningFlow(config))
