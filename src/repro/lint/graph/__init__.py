"""Whole-program analysis: import/call graphs and cross-file rules.

``repro.lint`` proper sees one file at a time; this subpackage parses
the whole tree once into a :class:`~repro.lint.graph.model.ProgramGraph`
and runs the rules that need cross-file knowledge — ASYNC001 (blocking
work reachable from serve coroutines), LOCK001 (registry mutations
outside the lock), DET003 (interprocedural nondeterminism into
fingerprint sinks) and ARCH001 (declared layering on the import
graph).  See DESIGN.md §18.
"""

from repro.lint.graph.builder import build_graph, build_graph_from_sources
from repro.lint.graph.model import (
    CallSite,
    ClassNode,
    FunctionNode,
    ImportEdge,
    ModuleNode,
    Mutation,
    ProgramGraph,
)

__all__ = [
    "CallSite",
    "ClassNode",
    "FunctionNode",
    "ImportEdge",
    "ModuleNode",
    "Mutation",
    "ProgramGraph",
    "build_graph",
    "build_graph_from_sources",
]
