"""Dogfood: the whole-program rules hold on this repository itself.

This is the live half of the CI gate — ``python -m repro lint
--graph`` must exit 0 on the real tree with an empty baseline, which
means every finding the graph rules ever raise here is a regression
someone just introduced (or a new rule that needs its true positives
fixed before landing, as ASYNC001 forced on repro.serve).
"""

from pathlib import Path

import repro
from repro.lint import build_graph, run_graph_rules
from repro.lint.graph.layers import load_graph_settings

REPO_ROOT = Path(__file__).resolve().parents[2]


def real_graph():
    return build_graph([Path(repro.__file__).parent])


class TestDogfood:
    def test_graph_rules_find_nothing_unsuppressed(self):
        graph = real_graph()
        settings = load_graph_settings(REPO_ROOT / "pyproject.toml")
        assert settings.layers, "pyproject.toml lost [tool.repro-lint]"
        findings = run_graph_rules(graph, settings)
        assert findings == [], "\n".join(f.to_text() for f in findings)

    def test_graph_covers_the_whole_tree(self):
        graph = real_graph()
        assert len(graph.modules) > 100
        assert len(graph.functions) > 800
        assert not graph.syntax_errors
        # The subsystems the rules police are all present.
        packages = {name.split(".")[1] for name in graph.modules if "." in name}
        assert {"serve", "observe", "parallel", "lint"} <= packages

    def test_serve_coroutines_are_visible_to_async001(self):
        # The rule only means something if the handlers it polices are
        # actually in the graph as async defs.
        graph = real_graph()
        async_serve = [
            f for f in graph.functions.values()
            if f.is_async and f.module.startswith("repro.serve")
        ]
        assert len(async_serve) >= 5
