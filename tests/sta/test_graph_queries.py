"""TimingGraph query helpers."""

import pytest

from repro.sta.graph import TimingGraph


class TestQueries:
    def test_total_area_sums_bound_cells(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        expected = sum(
            statistical_library.cell(i.cell).area for i in chain_netlist
        )
        assert graph.total_area() == pytest.approx(expected)

    def test_cell_usage_matches_netlist(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        usage = graph.cell_usage()
        assert sum(usage.values()) == len(chain_netlist)

    def test_fanout_counts_sinks(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        # the ND2 output drives the capture FF and the output port
        nd2 = next(i for i in chain_netlist if i.family == "ND2")
        net_id = graph.net_ids[nd2.net_of("Z")]
        assert graph.fanout_of(net_id) == 2

    def test_endpoint_setup_refreshed_on_remap(
        self, chain_netlist, statistical_library
    ):
        graph = TimingGraph(chain_netlist, statistical_library)
        before = [e.setup for e in graph.endpoints if e.kind == "ff_data"]
        assert all(s > 0 for s in before)
        graph.remap()
        after = [e.setup for e in graph.endpoints if e.kind == "ff_data"]
        assert before == after

    def test_level_groups_sorted_by_level(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        levels = [level for level, _group in graph.level_groups]
        assert levels == sorted(levels)

    def test_arc_counts_match_function_topology(
        self, adder_netlist, statistical_library
    ):
        graph = TimingGraph(adder_netlist, statistical_library)
        expected = sum(
            len(i.function.arcs())
            for i in adder_netlist.combinational_instances()
        )
        assert graph.n_arcs == expected
