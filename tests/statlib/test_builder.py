"""Statistical-library construction (paper Sec. IV / Fig. 2)."""

import numpy as np
import pytest

from repro.errors import LibertyError
from repro.statlib.builder import build_statistical_library, check_library_compatible


@pytest.fixture(scope="module")
def sample_libraries(characterizer, small_specs):
    return characterizer.sample_libraries(small_specs, n_samples=12, seed=7)


class TestFig2Combine:
    def test_matches_direct_statistical_path(self, characterizer, small_specs,
                                             sample_libraries):
        """The paper-faithful combine of N sample libraries must equal
        the vectorized direct computation bit-for-bit."""
        combined = build_statistical_library(sample_libraries)
        direct = characterizer.statistical_library(small_specs, n_samples=12, seed=7)
        for name in direct.cells:
            for pin_direct in direct.cell(name).output_pins():
                pin_combined = combined.cell(name).pin(pin_direct.name)
                for arc_d, arc_c in zip(pin_direct.timing, pin_combined.timing):
                    assert arc_d.cell_rise.allclose(arc_c.cell_rise, rtol=1e-9)
                    assert arc_d.cell_fall.allclose(arc_c.cell_fall, rtol=1e-9)
                    assert arc_d.sigma_rise.allclose(arc_c.sigma_rise, rtol=1e-9)
                    assert arc_d.sigma_fall.allclose(arc_c.sigma_fall, rtol=1e-9)
                    assert arc_d.rise_transition.allclose(arc_c.rise_transition, rtol=1e-9)

    def test_manual_entry_check(self, sample_libraries):
        """Spot-check one LUT entry against a hand-rolled mean/std —
        literally the marked-entry walk of paper Fig. 2."""
        combined = build_statistical_library(sample_libraries)
        name = sample_libraries[0].combinational_cells()[0].name
        entry = np.array([
            lib.cell(name).output_pins()[0].timing[0].cell_fall.values[0, 0]
            for lib in sample_libraries
        ])
        arc = combined.cell(name).output_pins()[0].timing[0]
        assert arc.cell_fall.values[0, 0] == pytest.approx(entry.mean())
        assert arc.sigma_fall.values[0, 0] == pytest.approx(entry.std(ddof=1))

    def test_result_flagged_statistical(self, sample_libraries):
        assert build_statistical_library(sample_libraries).is_statistical

    def test_preserves_cell_metadata(self, sample_libraries):
        combined = build_statistical_library(sample_libraries)
        reference = sample_libraries[0]
        for name, cell in combined.cells.items():
            ref = reference.cell(name)
            assert cell.area == ref.area
            assert cell.is_sequential == ref.is_sequential
            assert cell.clock_pin == ref.clock_pin

    def test_name_derived_from_samples(self, sample_libraries):
        combined = build_statistical_library(sample_libraries)
        assert combined.name.endswith("_stat")


class TestValidation:
    def test_needs_two_libraries(self, sample_libraries):
        with pytest.raises(LibertyError):
            build_statistical_library(sample_libraries[:1])

    def test_mismatched_cells_rejected(self, characterizer, small_specs):
        a = characterizer.sample_libraries(small_specs[:2], n_samples=2, seed=0)
        b = characterizer.sample_libraries(small_specs[:3], n_samples=2, seed=0)
        with pytest.raises(LibertyError):
            check_library_compatible(a[0], b[0])

    def test_compatible_libraries_pass(self, sample_libraries):
        check_library_compatible(sample_libraries[0], sample_libraries[1])
