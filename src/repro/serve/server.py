"""The asyncio HTTP front of the tuning service.

:class:`TuningServer` wraps a
:class:`~repro.serve.handlers.TuningService` in a small hand-rolled
HTTP/1.1 server (``asyncio.start_server`` — stdlib only, no web
framework).  Three routes:

* ``POST /v1/request`` — one versioned request envelope (see
  :mod:`repro.serve.schema`); the ``kind`` field dispatches.
* ``GET /v1/status`` — the service's health/load snapshot.
* ``GET /healthz`` — liveness only; never touches the pipeline.
* ``GET /metrics`` — the live metrics registry in Prometheus text
  format (see :mod:`repro.observe.metrics`); scrapes are counted but
  never written to the run ledger.

Every exchange carries a trace id: the client's ``x-repro-trace``
header if present, a fresh random id otherwise.  The id is echoed in
the response header *and* payload, recorded as a ``serve.request``
span on the active tracer, and used as the ``run_id`` of the request's
run-ledger record — one identity across client, span tree and ledger.

Failures map to structured JSON error responses, never tracebacks:
request validation (:class:`~repro.errors.RequestError`,
:class:`~repro.errors.ConfigError`,
:class:`~repro.errors.TuningError`) → 400, a full dispatch queue
(:class:`~repro.errors.ServerBusyError`) → 429, anything else → 500
with the exception folded into an opaque ``InternalError``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import (
    ConfigError,
    ReproError,
    RequestError,
    ServeError,
    ServerBusyError,
    TuningError,
)
from repro.flow.experiment import FlowConfig
from repro.observe.catalog import (
    SERVE_HTTP_RESPONSES,
    SERVE_INFLIGHT,
    SERVE_REQUEST_SECONDS,
    SERVE_REQUESTS,
)
from repro.observe.metrics import get_metrics, render_prometheus
from repro.serve.handlers import TuningService
from repro.serve.schema import (
    SCHEMA_VERSION,
    StatusRequest,
    error_response,
    parse_request,
)

#: Largest accepted request body; anything bigger is rejected with 413
#: before it is read.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def status_for_error(error: BaseException) -> int:
    """The HTTP status an exception maps to."""
    if isinstance(error, ServerBusyError):
        return 429
    if isinstance(error, (RequestError, ConfigError, TuningError)):
        return 400
    return 500


class RawBody:
    """A pre-serialized, non-JSON response body.

    The one route that is not JSON — ``GET /metrics`` — hands
    :meth:`TuningServer._write` one of these instead of a payload
    dict, carrying its own content type.
    """

    __slots__ = ("data", "content_type")

    def __init__(self, data: bytes, content_type: str):
        self.data = data
        self.content_type = content_type


class TuningServer:
    """Serve tuning requests over HTTP on an asyncio event loop.

    ``port=0`` binds an ephemeral port (the resolved port is published
    on :attr:`port` after :meth:`start` — what the tests use);
    ``ledger=False`` disables per-request ledger records, ``None``
    resolves the ledger from the environment (``REPRO_LEDGER``).
    An existing :class:`~repro.serve.handlers.TuningService` can be
    injected via ``service``; otherwise one is built from ``config``.
    """

    def __init__(
        self,
        config: Optional[FlowConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 8,
        service: Optional[TuningService] = None,
        ledger: Any = None,
    ):
        self.service = (
            service
            if service is not None
            else TuningService(config=config, max_pending=max_pending)
        )
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        if ledger is False:
            self._ledger = None
        elif ledger is None:
            from repro.observe.ledger import resolve_ledger

            self._ledger = resolve_ledger()
        else:
            self._ledger = ledger

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "TuningServer":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting connections and close the listener.

        Open keep-alive connections are closed too (their handler
        tasks see EOF and finish), so a server never leaks tasks into
        event-loop teardown.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        await asyncio.sleep(0)

    async def __aenter__(self) -> "TuningServer":
        """``async with TuningServer(...)`` starts the server."""
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        """Close the listener on scope exit."""
        await self.stop()

    def run(self) -> None:
        """Blocking entry point (the CLI's ``serve`` subcommand)."""

        async def _serve() -> None:
            await self.start()
            print(
                f"repro serve: listening on http://{self.host}:{self.port} "
                f"(scale={self.service.config.scale_name()}, "
                f"backend={self.service.backend.name}, "
                f"capacity={self.service.dispatcher.max_pending})",
                flush=True,
            )
            if self._server is None:  # pragma: no cover - start() sets it
                raise ServeError("server failed to start")
            async with self._server:
                await self._server.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass

    # -- connection handling ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (HTTP/1.1, keep-alive)."""
        self._writers.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    payload = error_response(
                        RequestError("malformed HTTP request line")
                    ).to_payload()
                    await self._write(writer, 400, payload, "", close=True)
                    break
                method, target = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                trace_id = headers.get("x-repro-trace") or os.urandom(8).hex()
                if length < 0:
                    payload = error_response(
                        RequestError("content-length is not an integer"),
                        trace_id,
                    ).to_payload()
                    await self._write(writer, 400, payload, trace_id, True)
                    break
                if length > MAX_BODY_BYTES:
                    payload = error_response(
                        RequestError(
                            f"request body of {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES} byte limit"
                        ),
                        trace_id,
                    ).to_payload()
                    await self._write(writer, 413, payload, trace_id, True)
                    break
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                status, payload = await self._route(
                    method, target, body, trace_id
                )
                await self._write(writer, status, payload, trace_id, close)
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):  # client went away mid-exchange; nothing to answer
            pass
        except asyncio.CancelledError:
            # Event-loop teardown cancelled an idle keep-alive handler;
            # the connection is being dropped either way, so finish
            # normally instead of leaking the cancellation into the
            # stream protocol's done-callback.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown races
                pass

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], RawBody],
        trace_id: str,
        close: bool,
    ) -> None:
        """Serialize and send one HTTP response."""
        if isinstance(payload, RawBody):
            data = payload.data
            content_type = payload.content_type
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"content-type: {content_type}\r\n"
            f"content-length: {len(data)}\r\n"
            f"x-repro-trace: {trace_id}\r\n"
            f"connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # -- routing ------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes, trace_id: str
    ) -> Tuple[int, Union[Dict[str, Any], RawBody]]:
        """Resolve one request to ``(status, payload)``; never raises."""
        start = time.perf_counter()
        kind = "http"
        SERVE_INFLIGHT.inc()
        try:
            return await self._dispatch_route(
                method, target, body, trace_id, start, kind
            )
        finally:
            SERVE_INFLIGHT.dec()

    async def _dispatch_route(
        self,
        method: str,
        target: str,
        body: bytes,
        trace_id: str,
        start: float,
        kind: str,
    ) -> Tuple[int, Union[Dict[str, Any], RawBody]]:
        """The actual routing logic behind the in-flight gauge."""
        payload: Union[Dict[str, Any], RawBody]
        try:
            if target == "/healthz":
                if method != "GET":
                    raise RequestError("/healthz only answers GET")
                return 200, {"schema": SCHEMA_VERSION, "ok": True}
            if target == "/metrics":
                kind = "metrics"
                if method != "GET":
                    raise RequestError("/metrics only answers GET")
                # snapshot() folds in the worker spool from disk —
                # render off the event loop.
                text = await asyncio.to_thread(self._render_metrics)
                await self._observe(
                    kind, trace_id, "ok", 200,
                    time.perf_counter() - start, ledger=False,
                )
                return 200, RawBody(
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            if target == "/v1/status":
                if method != "GET":
                    raise RequestError("/v1/status only answers GET")
                request = StatusRequest()
            elif target == "/v1/request":
                if method != "POST":
                    raise RequestError("/v1/request only answers POST")
                try:
                    raw = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise RequestError(
                        f"request body is not valid JSON: {error}"
                    ) from None
                request = parse_request(raw)
            else:
                payload = error_response(
                    RequestError(f"no such path: {target}"), trace_id
                ).to_payload()
                await self._observe(
                    kind, trace_id, "error", 404,
                    time.perf_counter() - start,
                )
                return 404, payload
            kind = request.kind
            response = await self.service.handle(request, trace_id)
            outcome = getattr(response, "outcome", "ok")
            status = 200
            payload = response.to_payload()
        except Exception as error:  # noqa: BLE001 - boundary: map, log, reply
            status = status_for_error(error)
            outcome = "rejected" if status == 429 else "error"
            self.service._count(outcome)
            if status == 500 and not isinstance(error, ReproError):
                # An unexpected bug: keep the structured reply, but
                # note the class server-side so it is diagnosable.
                print(
                    f"repro serve: internal error on {kind} request "
                    f"{trace_id}: {type(error).__name__}: {error}",
                    flush=True,
                )
            payload = error_response(error, trace_id).to_payload()
        await self._observe(
            kind, trace_id, outcome, status, time.perf_counter() - start
        )
        return status, payload

    # -- observability ------------------------------------------------

    @staticmethod
    def _render_metrics() -> str:
        """Prometheus exposition text (sync: snapshot reads the spool)."""
        return render_prometheus(get_metrics().snapshot())

    async def _observe(
        self,
        kind: str,
        trace_id: str,
        outcome: str,
        status: int,
        wall: float,
        ledger: bool = True,
    ) -> None:
        """Record one request: metrics, a span, and a run-ledger line.

        The metric bumps are in-memory and stay on the loop; the span
        sink and the run ledger write to disk, so that half runs in the
        default executor (only the bound method crosses the
        ``to_thread`` boundary, never a running call).
        """
        SERVE_REQUESTS.labels(kind=kind, outcome=outcome).inc()
        SERVE_REQUEST_SECONDS.labels(kind=kind, outcome=outcome).observe(wall)
        SERVE_HTTP_RESPONSES.labels(f"{status // 100}xx").inc()
        await asyncio.to_thread(
            self._persist_observation, kind, trace_id, outcome, status,
            wall, ledger,
        )

    def _persist_observation(
        self,
        kind: str,
        trace_id: str,
        outcome: str,
        status: int,
        wall: float,
        ledger: bool,
    ) -> None:
        """Span + ledger persistence (sync disk I/O; runs off-loop).

        Spans are recorded post-hoc (:meth:`Tracer.record_span`) —
        the tracer's live span stack is thread-local and the handlers
        hop threads, so entering a span context here would corrupt the
        tree.  Observability must never fail a served request, so
        ledger I/O errors are swallowed.  ``ledger=False`` keeps
        high-frequency scrape traffic (``/metrics``) out of the run
        ledger while still counting it.
        """
        from repro.observe import get_tracer

        tracer = self.service.config.tracer or get_tracer()
        tracer.record_span(
            "serve.request",
            wall,
            kind=kind,
            outcome=outcome,
            status=status,
            request_trace=trace_id,
        )
        if self._ledger is None or not ledger:
            return
        from repro.observe.ledger import capture_request

        record = capture_request(
            kind=kind,
            trace_id=trace_id,
            outcome=outcome,
            status=status,
            wall=wall,
            scale=self.service.config.scale_name(),
            metrics={"latency_ms": wall * 1e3},
        )
        try:
            self._ledger.append(record)
        except OSError:  # pragma: no cover - disk-full / perms
            pass
