"""Netlist data model.

Structure
---------
* **ports** — named primary inputs/outputs of the design;
* **nets** — each net has exactly one driver (an instance output pin or
  an input port) and any number of sinks (instance input pins or
  output ports);
* **instances** — gates; each references a cell family
  (:mod:`repro.cells.functions`) and, once synthesis has bound it, a
  concrete library cell name (drive strength variant).

The model enforces single-driver nets and acyclic combinational logic
(cycles through flip-flop D->Q are fine: sequential outputs are
topological sources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.cells.functions import CellFunction, function_by_name
from repro.errors import NetlistError


class PortDirection(enum.Enum):
    """Direction of a top-level port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class PinRef:
    """Reference to an instance pin; ``instance=None`` denotes a port."""

    instance: Optional[str]
    pin: str

    @property
    def is_port(self) -> bool:
        return self.instance is None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.pin if self.is_port else f"{self.instance}/{self.pin}"


@dataclass
class Net:
    """A wire: one driver, many sinks."""

    name: str
    driver: Optional[PinRef] = None
    sinks: List[PinRef] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        """Number of sink pins on the net."""
        return len(self.sinks)


@dataclass
class Instance:
    """A gate instance.

    ``family`` names the technology-independent cell function (e.g.
    ``ND2``); ``cell`` is the bound library variant (e.g. ``ND2_4``),
    empty until synthesis maps the design.
    """

    name: str
    family: str
    connections: Dict[str, str] = field(default_factory=dict)
    cell: str = ""

    @property
    def function(self) -> CellFunction:
        """Behaviour of the instance's family."""
        return function_by_name(self.family)

    @property
    def is_sequential(self) -> bool:
        return self.function.is_sequential

    def net_of(self, pin: str) -> str:
        """Net connected to ``pin``."""
        try:
            return self.connections[pin]
        except KeyError:
            raise NetlistError(f"instance {self.name}: pin {pin} unconnected") from None


class Netlist:
    """A gate-level design."""

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, PortDirection] = {}
        #: Port name -> net carrying its signal (inputs: a net named
        #: after the port; outputs: the net that drives the port).
        self.port_nets: Dict[str, str] = {}
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        #: Name of the clock input port ('' for pure combinational).
        self.clock: str = ""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input_port(self, name: str) -> str:
        """Declare a primary input; creates and returns its net."""
        if name in self.ports:
            raise NetlistError(f"duplicate port {name}")
        self.ports[name] = PortDirection.INPUT
        net = self._net(name)
        if net.driver is not None:
            raise NetlistError(f"net {name} already driven; cannot become input port")
        net.driver = PinRef(None, name)
        self.port_nets[name] = name
        return name

    def add_output_port(self, name: str, net_name: str) -> str:
        """Declare a primary output fed by the existing net ``net_name``."""
        if name in self.ports:
            raise NetlistError(f"duplicate port {name}")
        if net_name not in self.nets:
            raise NetlistError(f"output port {name}: unknown net {net_name}")
        self.ports[name] = PortDirection.OUTPUT
        self.nets[net_name].sinks.append(PinRef(None, name))
        self.port_nets[name] = net_name
        return name

    def port_net(self, name: str) -> str:
        """Net carrying the port's signal."""
        try:
            return self.port_nets[name]
        except KeyError:
            raise NetlistError(f"no port {name}") from None

    def set_clock(self, port_name: str) -> None:
        """Mark an input port as the design clock."""
        if self.ports.get(port_name) is not PortDirection.INPUT:
            raise NetlistError(f"clock {port_name} is not an input port")
        self.clock = port_name

    def _net(self, name: str) -> Net:
        net = self.nets.get(name)
        if net is None:
            net = Net(name=name)
            self.nets[name] = net
        return net

    def add_instance(
        self, name: str, family: str, connections: Dict[str, str]
    ) -> Instance:
        """Add a gate and hook up its pins to (auto-created) nets."""
        if name in self.instances:
            raise NetlistError(f"duplicate instance {name}")
        function = function_by_name(family)
        expected = set(function.input_pins) | set(function.output_pins)
        given = set(connections)
        if given != expected:
            raise NetlistError(
                f"instance {name} ({family}): pins {sorted(given)} do not match "
                f"required {sorted(expected)}"
            )
        instance = Instance(name=name, family=family, connections=dict(connections))
        self.instances[name] = instance
        for pin in function.input_pins:
            self._net(connections[pin]).sinks.append(PinRef(name, pin))
        for pin in function.output_pins:
            net = self._net(connections[pin])
            if net.driver is not None:
                raise NetlistError(
                    f"net {connections[pin]} has two drivers: {net.driver} and {name}/{pin}"
                )
            net.driver = PinRef(name, pin)
        return instance

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def net(self, name: str) -> Net:
        """Return the net called ``name``."""
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net {name}") from None

    def instance(self, name: str) -> Instance:
        """Return the instance called ``name``."""
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"no instance {name}") from None

    def input_ports(self) -> List[str]:
        """Primary input port names, in declaration order."""
        return [p for p, d in self.ports.items() if d is PortDirection.INPUT]

    def output_ports(self) -> List[str]:
        """Primary output port names, in declaration order."""
        return [p for p, d in self.ports.items() if d is PortDirection.OUTPUT]

    def combinational_instances(self) -> List[Instance]:
        """All non-sequential instances."""
        return [i for i in self.instances.values() if not i.is_sequential]

    def sequential_instances(self) -> List[Instance]:
        """All flip-flop and latch instances."""
        return [i for i in self.instances.values() if i.is_sequential]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances.values())

    def stats(self) -> Dict[str, int]:
        """Size summary: gates, flip-flops, nets, ports."""
        return {
            "instances": len(self.instances),
            "combinational": len(self.combinational_instances()),
            "sequential": len(self.sequential_instances()),
            "nets": len(self.nets),
            "ports": len(self.ports),
        }

    def family_histogram(self) -> Dict[str, int]:
        """Instance count per family (pre-synthesis Fig. 9 view)."""
        histogram: Dict[str, int] = {}
        for instance in self:
            histogram[instance.family] = histogram.get(instance.family, 0) + 1
        return histogram

    def cell_histogram(self) -> Dict[str, int]:
        """Instance count per bound library cell (Fig. 9 view)."""
        histogram: Dict[str, int] = {}
        for instance in self:
            if not instance.cell:
                raise NetlistError(
                    f"instance {instance.name} not bound to a cell; run synthesis first"
                )
            histogram[instance.cell] = histogram.get(instance.cell, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def combinational_order(self) -> List[Instance]:
        """Topological order of combinational instances.

        Sources are primary inputs and sequential outputs; sequential
        instances do not appear in the order (their data inputs are
        sinks, their outputs sources).  Raises on combinational cycles.
        """
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for instance in self.combinational_instances():
            count = 0
            for pin in instance.function.input_pins:
                net = self.net(instance.net_of(pin))
                driver = net.driver
                if driver is None:
                    raise NetlistError(f"net {net.name} is undriven")
                if driver.instance is not None:
                    driver_instance = self.instance(driver.instance)
                    if not driver_instance.is_sequential:
                        count += 1
                        dependents.setdefault(driver.instance, []).append(instance.name)
            indegree[instance.name] = count

        ready = [name for name, count in indegree.items() if count == 0]
        order: List[Instance] = []
        while ready:
            name = ready.pop()
            order.append(self.instance(name))
            for dependent in dependents.get(name, ()):  # noqa: B007
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(indegree):
            stuck = sorted(name for name, count in indegree.items() if count > 0)
            raise NetlistError(
                f"combinational cycle involving {len(stuck)} instances, "
                f"e.g. {stuck[:5]}"
            )
        return order

    def levelize(self) -> Dict[str, int]:
        """Logic level (longest distance from a source) per instance.

        Sequential instances are level 0 (their outputs launch paths).
        """
        levels: Dict[str, int] = {
            instance.name: 0 for instance in self.sequential_instances()
        }
        for instance in self.combinational_order():
            level = 0
            for pin in instance.function.input_pins:
                driver = self.net(instance.net_of(pin)).driver
                if driver is not None and driver.instance is not None:
                    level = max(level, levels[driver.instance] + 1)
                else:
                    level = max(level, 1)
            levels[instance.name] = level
        return levels

    # ------------------------------------------------------------------
    # Validation and editing
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`."""
        for net in self.nets.values():
            if net.driver is None:
                raise NetlistError(f"net {net.name} is undriven")
        for instance in self:
            for pin, net_name in instance.connections.items():
                if net_name not in self.nets:
                    raise NetlistError(
                        f"instance {instance.name}: pin {pin} on unknown net {net_name}"
                    )
        self.combinational_order()  # raises on cycles

    def prune_dangling(self) -> int:
        """Remove instances none of whose outputs reach any sink.

        Generators occasionally leave unused outputs (e.g. the final
        carry of an adder); synthesis tools prune the fanin cones that
        only feed them.  Returns the number of removed instances.
        """
        removed_total = 0
        while True:
            removed = [
                instance
                for instance in self.instances.values()
                if all(
                    not self.net(instance.net_of(pin)).sinks
                    for pin in instance.function.output_pins
                )
            ]
            if not removed:
                return removed_total
            for instance in removed:
                for pin in instance.function.input_pins:
                    net = self.net(instance.net_of(pin))
                    net.sinks = [
                        sink for sink in net.sinks if sink.instance != instance.name
                    ]
                for pin in instance.function.output_pins:
                    del self.nets[instance.net_of(pin)]
                del self.instances[instance.name]
            removed_total += len(removed)

    def rewire_sink(self, net_name: str, sink: PinRef, new_net: str) -> None:
        """Move one sink pin from ``net_name`` onto ``new_net``."""
        net = self.net(net_name)
        if sink not in net.sinks:
            raise NetlistError(f"{sink} is not a sink of {net_name}")
        net.sinks.remove(sink)
        self._net(new_net).sinks.append(sink)
        if sink.instance is not None:
            self.instance(sink.instance).connections[sink.pin] = new_net

    def unique_name(self, prefix: str) -> str:
        """Fresh instance/net name with the given prefix."""
        index = len(self.instances) + len(self.nets)
        while True:
            candidate = f"{prefix}_{index}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate
            index += 1

    def endpoint_nets(self) -> List[str]:
        """Nets that end timing paths: FF data inputs and output ports.

        Returned in a stable order; these are the "unique endpoints"
        the paper measures worst paths against.
        """
        endpoints: List[str] = []
        seen: Set[str] = set()
        for instance in self.sequential_instances():
            for pin in instance.function.data_input_pins:
                net_name = instance.net_of(pin)
                key = f"{instance.name}/{pin}"
                if key not in seen:
                    seen.add(key)
                    endpoints.append(net_name)
        for port in self.output_ports():
            endpoints.append(self.port_net(port))
        return endpoints
