"""Peripheral blocks: timers, UART transmitter, GPIO.

Small sequential blocks contributing the short and medium paths of a
microcontroller (the population where the paper finds local variation
dominating, Sec. VII.C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder


@dataclass
class TimerPorts:
    """Nets of an emitted timer."""

    count: Bus
    match: str


def timer(
    builder: NetlistBuilder, width: int, compare_value: Bus, enable: str, reset_n: str
) -> TimerPorts:
    """Free-running up-counter with a compare-match output."""
    if len(compare_value) != width:
        raise NetlistError("compare bus width must match the timer width")
    with builder.scope(builder.fresh("tmr")):
        count_nets = [builder.fresh("cnt") for _ in range(width)]
        incremented = builder.incrementer(count_nets)
        next_count = builder.mux_word(count_nets, incremented, enable)
        for d, q in zip(next_count, count_nets):
            builder.dff(d, reset_n=reset_n, out=q)
        match = builder.equals(count_nets, compare_value)
        return TimerPorts(count=list(count_nets), match=match)


def uart_tx(builder: NetlistBuilder, data: Bus, load: str, reset_n: str) -> str:
    """Parallel-load shift register: the heart of a UART transmitter.

    Returns the serial output net (LSB shifted out first).
    """
    if not data:
        raise NetlistError("uart_tx needs data bits")
    with builder.scope(builder.fresh("uart")):
        stage_nets = [builder.fresh("sh") for _ in range(len(data))]
        zero = builder.tie(0)
        for i, q in enumerate(stage_nets):
            shifted_in = stage_nets[i + 1] if i + 1 < len(stage_nets) else zero
            d = builder.mux2(shifted_in, data[i], load)
            builder.dff(d, reset_n=reset_n, out=q)
        return stage_nets[0]


def gpio_block(
    builder: NetlistBuilder, bus_in: Bus, write: str, pins_in: Bus, reset_n: str
) -> Bus:
    """GPIO: output register + synchronized input sampling.

    Returns the read-back bus (output register XOR-mixed with the
    two-stage synchronized pin inputs, giving the block some logic).
    """
    if len(bus_in) != len(pins_in):
        raise NetlistError("GPIO bus and pin widths must match")
    with builder.scope(builder.fresh("gpio")):
        out_reg = builder.register_en(bus_in, write, reset_n=reset_n)
        sync1 = builder.register(pins_in, reset_n=reset_n)
        sync2 = builder.register(sync1, reset_n=reset_n)
        return builder.xor_word(out_reg, sync2)
