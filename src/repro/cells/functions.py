"""Logic functions of the cell catalog.

Each :class:`CellFunction` bundles everything the rest of the system
needs to know about a cell *family's* behaviour, independent of drive
strength:

* pin names and directions;
* boolean evaluation (used by the netlist functional simulator and by
  the generator tests);
* Liberty ``function`` expressions per output pin;
* timing-arc topology (which input/output pairs have arcs) and the
  unateness of each arc;
* sequential metadata (clock pin, latch-ness) for flip-flops/latches.

Pin conventions follow common library practice: data inputs ``A B C D``,
mux data ``D0..D3`` with selects ``S0 S1``, adder ``A B CI`` with
outputs ``S CO``, flip-flop ``D CP (RN) (SN)`` with output ``Q``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.errors import CatalogError
from repro.liberty.model import TimingSense

Inputs = Dict[str, bool]
Outputs = Dict[str, bool]


@dataclass(frozen=True)
class CellFunction:
    """Behavioural description of a cell family (drive-independent)."""

    name: str
    input_pins: Tuple[str, ...]
    output_pins: Tuple[str, ...]
    expressions: Dict[str, str]
    _evaluate: Callable[[Inputs], Outputs]
    #: Unateness per (input_pin, output_pin) arc.
    senses: Dict[Tuple[str, str], TimingSense] = field(default_factory=dict)
    is_sequential: bool = False
    is_latch: bool = False
    clock_pin: str = ""

    def evaluate(self, inputs: Inputs) -> Outputs:
        """Evaluate the combinational function of the cell.

        Sequential cells raise: their output depends on state, which the
        netlist simulator tracks separately.
        """
        if self.is_sequential:
            raise CatalogError(f"{self.name} is sequential; evaluate via the simulator")
        missing = [pin for pin in self.input_pins if pin not in inputs]
        if missing:
            raise CatalogError(f"{self.name}.evaluate: missing inputs {missing}")
        return self._evaluate(inputs)

    def arcs(self) -> List[Tuple[str, str]]:
        """Timing-arc topology as (input_pin, output_pin) pairs."""
        if self.is_sequential:
            return [(self.clock_pin, out) for out in self.output_pins]
        return [
            (inp, out)
            for out in self.output_pins
            for inp in self.input_pins
        ]

    def sense(self, input_pin: str, output_pin: str) -> TimingSense:
        """Unateness of the arc from ``input_pin`` to ``output_pin``."""
        key = (input_pin, output_pin)
        if key in self.senses:
            return self.senses[key]
        return TimingSense.NON_UNATE

    @property
    def data_input_pins(self) -> Tuple[str, ...]:
        """Input pins excluding the clock (identical for combinational)."""
        return tuple(p for p in self.input_pins if p != self.clock_pin)

    def __reduce__(self):
        # The boolean evaluator is a closure, so instances pickle by
        # name through the family registry; this is what lets the
        # parallel characterization layer ship CellSpec chunks to
        # worker processes.
        if FUNCTIONS.get(self.name) is self:
            return (function_by_name, (self.name,))
        raise pickle.PicklingError(
            f"CellFunction {self.name!r} is not the registered instance; "
            "only registry functions (see FUNCTIONS) can cross process "
            "boundaries"
        )


def _uniform_senses(
    inputs: Tuple[str, ...], outputs: Tuple[str, ...], sense: TimingSense
) -> Dict[Tuple[str, str], TimingSense]:
    return {(i, o): sense for o in outputs for i in inputs}


_LETTERS = ("A", "B", "C", "D")


def _make_inv() -> CellFunction:
    return CellFunction(
        name="INV",
        input_pins=("A",),
        output_pins=("Z",),
        expressions={"Z": "!A"},
        _evaluate=lambda v: {"Z": not v["A"]},
        senses={("A", "Z"): TimingSense.NEGATIVE_UNATE},
    )


def _make_buf() -> CellFunction:
    return CellFunction(
        name="BUF",
        input_pins=("A",),
        output_pins=("Z",),
        expressions={"Z": "A"},
        _evaluate=lambda v: {"Z": bool(v["A"])},
        senses={("A", "Z"): TimingSense.POSITIVE_UNATE},
    )


def _make_nand(n: int) -> CellFunction:
    pins = _LETTERS[:n]
    expr = "!(" + "*".join(pins) + ")"
    return CellFunction(
        name=f"ND{n}",
        input_pins=pins,
        output_pins=("Z",),
        expressions={"Z": expr},
        _evaluate=lambda v, pins=pins: {"Z": not all(v[p] for p in pins)},
        senses=_uniform_senses(pins, ("Z",), TimingSense.NEGATIVE_UNATE),
    )


def _make_nor(n: int) -> CellFunction:
    pins = _LETTERS[:n]
    expr = "!(" + "+".join(pins) + ")"
    return CellFunction(
        name=f"NR{n}",
        input_pins=pins,
        output_pins=("Z",),
        expressions={"Z": expr},
        _evaluate=lambda v, pins=pins: {"Z": not any(v[p] for p in pins)},
        senses=_uniform_senses(pins, ("Z",), TimingSense.NEGATIVE_UNATE),
    )


def _make_nor2b() -> CellFunction:
    """2-input NOR with a bubbled B input: Z = !(A + !B) = !A * B."""
    return CellFunction(
        name="NR2B",
        input_pins=("A", "B"),
        output_pins=("Z",),
        expressions={"Z": "!(A+!B)"},
        _evaluate=lambda v: {"Z": (not v["A"]) and bool(v["B"])},
        senses={
            ("A", "Z"): TimingSense.NEGATIVE_UNATE,
            ("B", "Z"): TimingSense.POSITIVE_UNATE,
        },
    )


def _make_or(n: int) -> CellFunction:
    pins = _LETTERS[:n]
    expr = "+".join(pins)
    return CellFunction(
        name=f"OR{n}",
        input_pins=pins,
        output_pins=("Z",),
        expressions={"Z": expr},
        _evaluate=lambda v, pins=pins: {"Z": any(v[p] for p in pins)},
        senses=_uniform_senses(pins, ("Z",), TimingSense.POSITIVE_UNATE),
    )


def _make_xnor(n: int) -> CellFunction:
    pins = _LETTERS[:n]
    expr = "!(" + "^".join(pins) + ")"

    def evaluate(v: Inputs, pins: Tuple[str, ...] = pins) -> Outputs:
        parity = False
        for pin in pins:
            parity ^= bool(v[pin])
        return {"Z": not parity}

    return CellFunction(
        name=f"XNR{n}",
        input_pins=pins,
        output_pins=("Z",),
        expressions={"Z": expr},
        _evaluate=evaluate,
        senses=_uniform_senses(pins, ("Z",), TimingSense.NON_UNATE),
    )


def _make_mux2() -> CellFunction:
    return CellFunction(
        name="MUX2",
        input_pins=("D0", "D1", "S"),
        output_pins=("Z",),
        expressions={"Z": "(D0*!S)+(D1*S)"},
        _evaluate=lambda v: {"Z": bool(v["D1"]) if v["S"] else bool(v["D0"])},
        senses={
            ("D0", "Z"): TimingSense.POSITIVE_UNATE,
            ("D1", "Z"): TimingSense.POSITIVE_UNATE,
            ("S", "Z"): TimingSense.NON_UNATE,
        },
    )


def _make_mux4() -> CellFunction:
    def evaluate(v: Inputs) -> Outputs:
        sel = (1 if v["S0"] else 0) | (2 if v["S1"] else 0)
        return {"Z": bool(v[f"D{sel}"])}

    return CellFunction(
        name="MUX4",
        input_pins=("D0", "D1", "D2", "D3", "S0", "S1"),
        output_pins=("Z",),
        expressions={
            "Z": "(D0*!S0*!S1)+(D1*S0*!S1)+(D2*!S0*S1)+(D3*S0*S1)",
        },
        _evaluate=evaluate,
        senses={
            ("D0", "Z"): TimingSense.POSITIVE_UNATE,
            ("D1", "Z"): TimingSense.POSITIVE_UNATE,
            ("D2", "Z"): TimingSense.POSITIVE_UNATE,
            ("D3", "Z"): TimingSense.POSITIVE_UNATE,
            ("S0", "Z"): TimingSense.NON_UNATE,
            ("S1", "Z"): TimingSense.NON_UNATE,
        },
    )


def _make_half_adder() -> CellFunction:
    return CellFunction(
        name="ADDH",
        input_pins=("A", "B"),
        output_pins=("S", "CO"),
        expressions={"S": "A^B", "CO": "A*B"},
        _evaluate=lambda v: {
            "S": bool(v["A"]) ^ bool(v["B"]),
            "CO": bool(v["A"]) and bool(v["B"]),
        },
        senses={
            ("A", "S"): TimingSense.NON_UNATE,
            ("B", "S"): TimingSense.NON_UNATE,
            ("A", "CO"): TimingSense.POSITIVE_UNATE,
            ("B", "CO"): TimingSense.POSITIVE_UNATE,
        },
    )


def _make_full_adder() -> CellFunction:
    def evaluate(v: Inputs) -> Outputs:
        a, b, ci = bool(v["A"]), bool(v["B"]), bool(v["CI"])
        return {"S": a ^ b ^ ci, "CO": (a and b) or (a and ci) or (b and ci)}

    return CellFunction(
        name="ADDF",
        input_pins=("A", "B", "CI"),
        output_pins=("S", "CO"),
        expressions={
            "S": "A^B^CI",
            "CO": "(A*B)+(A*CI)+(B*CI)",
        },
        _evaluate=evaluate,
        senses={
            ("A", "S"): TimingSense.NON_UNATE,
            ("B", "S"): TimingSense.NON_UNATE,
            ("CI", "S"): TimingSense.NON_UNATE,
            ("A", "CO"): TimingSense.POSITIVE_UNATE,
            ("B", "CO"): TimingSense.POSITIVE_UNATE,
            ("CI", "CO"): TimingSense.POSITIVE_UNATE,
        },
    )


def _make_dff(name: str, has_reset: bool, has_set: bool) -> CellFunction:
    pins: List[str] = ["D", "CP"]
    if has_reset:
        pins.append("RN")
    if has_set:
        pins.append("SN")
    return CellFunction(
        name=name,
        input_pins=tuple(pins),
        output_pins=("Q",),
        expressions={"Q": "IQ"},
        _evaluate=lambda v: {"Q": False},
        senses={("CP", "Q"): TimingSense.POSITIVE_UNATE},
        is_sequential=True,
        clock_pin="CP",
    )


def _make_latch() -> CellFunction:
    return CellFunction(
        name="LATQ",
        input_pins=("D", "EN"),
        output_pins=("Q",),
        expressions={"Q": "IQ"},
        _evaluate=lambda v: {"Q": False},
        senses={("EN", "Q"): TimingSense.POSITIVE_UNATE},
        is_sequential=True,
        is_latch=True,
        clock_pin="EN",
    )


def _build_registry() -> Dict[str, CellFunction]:
    functions = [
        _make_inv(),
        _make_buf(),
        _make_nand(2),
        _make_nand(3),
        _make_nand(4),
        _make_nor(2),
        _make_nor(3),
        _make_nor(4),
        _make_nor2b(),
        _make_or(2),
        _make_or(3),
        _make_or(4),
        _make_xnor(2),
        _make_xnor(3),
        _make_mux2(),
        _make_mux4(),
        _make_half_adder(),
        _make_full_adder(),
        _make_dff("DFF", has_reset=False, has_set=False),
        _make_dff("DFFR", has_reset=True, has_set=False),
        _make_dff("DFFS", has_reset=False, has_set=True),
        _make_dff("DFFSR", has_reset=True, has_set=True),
        _make_latch(),
    ]
    return {fn.name: fn for fn in functions}


#: Registry of every cell-family behaviour, keyed by family name.
FUNCTIONS: Dict[str, CellFunction] = _build_registry()


def function_by_name(name: str) -> CellFunction:
    """Look up a cell family's behaviour; raises for unknown families."""
    try:
        return FUNCTIONS[name]
    except KeyError:
        raise CatalogError(
            f"unknown cell function {name!r}; available: {sorted(FUNCTIONS)}"
        ) from None
