"""Bench: Table 3 — winning constraint parameter per method/period."""

from conftest import show

from repro.core.methods import SWEEP_VALUES, method_by_name
from repro.experiments import table3_winning_params


def test_table3_winning_params(benchmark, context):
    result = benchmark.pedantic(
        table3_winning_params.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 5  # one row per tuning method
    for row in result.rows:
        method = method_by_name(row["method"])
        values = set(SWEEP_VALUES[method.kind])
        winners = [v for k, v in row.items() if k.startswith("@")]
        # winners come from the Table 2 sweep (or None if nothing fits)
        assert all(w is None or w in values for w in winners)
        assert any(w is not None for w in winners)
