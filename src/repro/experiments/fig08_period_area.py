"""Fig. 8 — clock period versus total cell area.

Sweeping the clock from just above the minimum to deeply relaxed shows
the area dropping and flattening; the paper reads its "relaxed timing"
point (10 ns) off the flat part of this curve.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.flow.minperiod import find_relaxed_period, period_area_sweep


def run(context: ExperimentContext, n_points: int = 7) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    minimum = context.minimum_period()
    top = round(minimum * 4.5, 1)
    periods = [
        round(minimum + (top - minimum) * k / (n_points - 1), 2)
        for k in range(n_points)
    ]

    def probe(period: float):
        run_at = context.flow.baseline(period)
        return run_at.met, run_at.area

    sweep = period_area_sweep(probe, periods)
    knee = find_relaxed_period(sweep, flatness=0.02)
    baseline_area = sweep[-1]["area"]
    rows = [
        {
            "clock_ns": row["clock_period"],
            "area_um2": round(row["area"], 0),
            "area_vs_relaxed": row["area"] / baseline_area,
            "met": bool(row["met"]),
        }
        for row in sweep
    ]
    monotone = all(
        rows[i]["area_um2"] >= rows[i + 1]["area_um2"] * 0.97
        for i in range(len(rows) - 1)
    )
    return ExperimentResult(
        experiment_id="fig08",
        title="Clock period vs total cell area (baseline synthesis)",
        rows=rows,
        notes=(
            f"curve flattens at ~{knee:g} ns (the paper's 'relaxed' point); "
            f"area non-increasing with period: {monotone}"
        ),
    )
