"""Cell choices and initial mapping."""

import math

import pytest

from repro.core.restriction import SlewLoadWindow
from repro.errors import SynthesisError
from repro.netlist.builder import NetlistBuilder
from repro.synth.constraints import SynthesisConstraints
from repro.synth.mapping import CellChoices, initial_mapping


@pytest.fixture()
def constraints():
    return SynthesisConstraints(clock_period=2.0)


class TestCellChoices:
    def test_variants_sorted_by_strength(self, statistical_library, constraints):
        choices = CellChoices(statistical_library, constraints)
        for family in choices.families():
            strengths = [v.strength for v in choices.variants(family)]
            assert strengths == sorted(strengths)

    def test_every_family_available_untuned(self, statistical_library, constraints):
        choices = CellChoices(statistical_library, constraints)
        assert {"INV", "ND2", "ADDF", "DFF"} <= set(choices.families())

    def test_next_up_down(self, statistical_library, constraints):
        choices = CellChoices(statistical_library, constraints)
        inv = choices.smallest("INV")
        up = choices.next_up(inv.cell_name)
        assert up is not None and up.strength > inv.strength
        assert choices.next_down(inv.cell_name) is None
        top = choices.largest("INV")
        assert choices.next_up(top.cell_name) is None

    def test_smallest_for_load(self, statistical_library, constraints):
        choices = CellChoices(statistical_library, constraints)
        tiny = choices.smallest_for_load("INV", 0.0001)
        assert tiny.strength == choices.smallest("INV").strength
        big = choices.smallest_for_load("INV", 0.1)
        assert big.strength > tiny.strength

    def test_smallest_for_huge_load_falls_back_to_largest(
        self, statistical_library, constraints
    ):
        choices = CellChoices(statistical_library, constraints)
        assert (
            choices.smallest_for_load("INV", 99.0).cell_name
            == choices.largest("INV").cell_name
        )

    def test_untuned_windows_are_unbounded(self, statistical_library, constraints):
        choices = CellChoices(statistical_library, constraints)
        for variant in choices.variants("INV"):
            assert math.isinf(variant.max_slew)
            assert variant.max_load > 0

    def test_unknown_cell_rejected(self, statistical_library, constraints):
        choices = CellChoices(statistical_library, constraints)
        with pytest.raises(SynthesisError):
            choices.variant_of("INV_999")


class TestWindowedChoices:
    def make_windows(self, statistical_library, exclude=(), max_load=None):
        windows = {}
        for cell in statistical_library:
            for pin in cell.output_pins():
                if cell.name in exclude:
                    windows[(cell.name, pin.name)] = None
                else:
                    windows[(cell.name, pin.name)] = SlewLoadWindow(
                        0.0, 1.2, 0.0, max_load or pin.max_capacitance
                    )
        return windows

    def test_excluded_variant_unusable(self, statistical_library):
        windows = self.make_windows(statistical_library, exclude=("INV_0P5",))
        constraints = SynthesisConstraints(clock_period=2.0, windows=windows)
        choices = CellChoices(statistical_library, constraints)
        names = [v.cell_name for v in choices.variants("INV")]
        assert "INV_0P5" not in names
        assert choices.smallest("INV").cell_name == "INV_1"

    def test_fully_excluded_family_raises(self, statistical_library):
        inv_names = tuple(c.name for c in statistical_library if c.name.startswith("INV_"))
        windows = self.make_windows(statistical_library, exclude=inv_names)
        constraints = SynthesisConstraints(clock_period=2.0, windows=windows)
        choices = CellChoices(statistical_library, constraints)
        with pytest.raises(SynthesisError):
            choices.variants("INV")

    def test_window_caps_max_load(self, statistical_library):
        windows = self.make_windows(statistical_library, max_load=0.001)
        constraints = SynthesisConstraints(clock_period=2.0, windows=windows)
        choices = CellChoices(statistical_library, constraints)
        for variant in choices.variants("ND2"):
            assert variant.max_load <= 0.001


class TestInitialMapping:
    def test_binds_weakest_variant(self, statistical_library, constraints):
        builder = NetlistBuilder("map")
        a = builder.input("a")
        builder.output("y", builder.inv(builder.nand(a, a)))
        netlist = builder.netlist
        choices = CellChoices(statistical_library, constraints)
        initial_mapping(netlist, choices)
        for instance in netlist:
            assert instance.cell == choices.smallest(instance.family).cell_name
