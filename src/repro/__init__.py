"""repro — reproduction of "Standard Cell Library Tuning for Variability
Tolerant Designs" (Fabrie, DATE 2014 / TU/e 2013).

The package implements the paper's full flow from scratch:

* a Liberty (.lib) substrate (:mod:`repro.liberty`);
* a 304-cell standard-cell catalog with a SPICE-surrogate
  characterization engine (:mod:`repro.cells`,
  :mod:`repro.characterization`) and Pelgrom-law local variation
  (:mod:`repro.variation`);
* statistical-library construction (:mod:`repro.statlib`);
* the library-tuning contribution — slope/ceiling threshold extraction,
  largest-rectangle LUT restriction, five tuning methods
  (:mod:`repro.core`);
* a gate-level netlist substrate with a ~20k-gate microcontroller
  generator (:mod:`repro.netlist`), an STA engine with statistical path
  analysis (:mod:`repro.sta`) and a timing-driven synthesizer honoring
  per-pin slew/load windows (:mod:`repro.synth`);
* end-to-end flows and every table/figure of the evaluation
  (:mod:`repro.flow`, :mod:`repro.experiments`).

Quickstart::

    from repro.cells import build_catalog
    from repro.characterization import Characterizer

    specs = build_catalog()
    stat_lib = Characterizer().statistical_library(specs, n_samples=50, seed=0)
"""

__version__ = "1.0.0"
