"""Bench: Table 1 — clock periods incl. the minimum-period search."""

from conftest import show

from repro.experiments import table1_clock_periods


def test_table1_clock_periods(benchmark, context):
    result = benchmark.pedantic(
        table1_clock_periods.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    rows = {row["constraint"]: row for row in result.rows}
    periods = [row["ours_ns"] for row in result.rows]
    # four operating points, strictly increasing like 2.41/2.5/4/10
    assert len(periods) == 4
    assert periods == sorted(periods)
    # every operating point is synthesizable
    assert all(row["met"] for row in result.rows)
    # the paper's ratios are preserved within rounding
    high = rows["High performance (minimum achievable)"]["ours_ns"]
    low = rows["Low performance"]["ours_ns"]
    assert 3.9 <= low / high <= 4.4  # paper: 10/2.41 = 4.15
    # below the minimum the synthesis must fail
    assert "met=False" in result.notes
