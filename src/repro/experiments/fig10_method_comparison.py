"""Fig. 10 — best sigma reduction under a 10% area cap, per method and
clock period.

For every tuning method, every Table 2 parameter is synthesized at
every operating point; per (method, period) the figure keeps the
feasible run with the highest sigma reduction whose area increase stays
below 10%.  Paper's headline: the sigma ceiling reaches ~37% sigma
reduction at ~7% area on the high-performance design; the strength-
based methods give ~31% at near-zero area cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.methods import TUNING_METHODS
from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.flow.metrics import TuningComparison, best_under_area_cap

#: Method order as in the paper's bars.
METHOD_ORDER = (
    "cell_strength_load_slope",
    "cell_strength_slew_slope",
    "cell_load_slope",
    "cell_slew_slope",
    "sigma_ceiling",
)


def sweep_all(
    context: ExperimentContext,
    periods: Optional[Sequence[float]] = None,
) -> Dict[Tuple[str, float], List[TuningComparison]]:
    """All (method, period) sweeps; memoized through the flow.

    The full (period, method, parameter) point grid goes through
    :meth:`~repro.flow.experiment.TuningFlow.sweep_comparisons` as one
    batch, so with ``n_workers > 1`` the whole evaluation fans out over
    worker processes instead of one method sweep at a time.
    """
    flow = context.flow
    chosen = list(periods) if periods is not None else list(
        context.standard_periods().values()
    )
    points = [
        (period, method, value)
        for period in chosen
        for method in METHOD_ORDER
        for value in TUNING_METHODS[method].sweep_values()
    ]
    comparisons = flow.sweep_comparisons(points)
    sweeps: Dict[Tuple[str, float], List[TuningComparison]] = {}
    for (period, method, _value), comparison in zip(points, comparisons):
        sweeps.setdefault((method, period), []).append(comparison)
    return sweeps


def run(
    context: ExperimentContext,
    periods: Optional[Sequence[float]] = None,
    area_cap: float = 0.10,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    sweeps = sweep_all(context, periods)
    period_names = {v: k for k, v in context.standard_periods().items()}
    rows = []
    for (method, period), comparisons in sorted(
        sweeps.items(), key=lambda kv: (kv[0][1], METHOD_ORDER.index(kv[0][0]))
    ):
        best = best_under_area_cap(comparisons, area_cap=area_cap)
        rows.append({
            "clock_ns": period,
            "point": period_names.get(period, "custom"),
            "method": TUNING_METHODS[method].paper_name,
            "best_param": best.parameter if best else None,
            "sigma_reduction": round(best.sigma_reduction, 3) if best else None,
            "area_increase": round(best.area_increase, 3) if best else None,
            "sigma_ns": round(best.tuned_sigma, 4) if best else None,
            "area_um2": round(best.tuned_area, 0) if best else None,
        })
    ceiling_rows = [
        r for r in rows if "ceiling" in r["method"] and r["sigma_reduction"] is not None
    ]
    headline = max(
        (r["sigma_reduction"] for r in ceiling_rows), default=float("nan")
    )
    return ExperimentResult(
        experiment_id="fig10",
        title=f"Best sigma reduction with area increase < {area_cap:.0%}",
        rows=rows,
        notes=(
            f"sigma-ceiling best reduction across periods: {headline:.1%} "
            "(paper: 37% at 7% area on the high-performance design)"
        ),
    )
