"""Liberty data model.

The classes here mirror the Liberty group structure::

    library (name) {
      operating_conditions ...
      lu_table_template (tmpl) { variable_1/2, index_1/2 }
      cell (NAME) {
        area : ...;
        pin (A) { direction : input; capacitance : ...; }
        pin (Z) {
          direction : output;
          function : "!(A B)";
          max_capacitance : ...;
          timing () {
            related_pin : "A";
            timing_sense : negative_unate;
            cell_rise (tmpl) { values(...) }
            ...
          }
        }
      }
    }

Conventions
-----------
* ``Lut.values[i, j]`` is indexed by ``index_1[i]`` (input transition,
  ns) and ``index_2[j]`` (output load, pF).
* A *statistical* library reuses the same classes; each arc then holds
  ``mean`` tables in the ``cell_rise``/``cell_fall`` slots of one arc
  view and ``sigma`` tables in :attr:`TimingArc.sigma_rise` /
  :attr:`TimingArc.sigma_fall`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import LibertyError, LutError
from repro.units import CAP_UNIT, NOMINAL_TEMPERATURE, NOMINAL_VDD, TIME_UNIT


class PinDirection(enum.Enum):
    """Direction of a cell pin."""

    INPUT = "input"
    OUTPUT = "output"


class TimingSense(enum.Enum):
    """Unateness of a timing arc, as declared in Liberty."""

    POSITIVE_UNATE = "positive_unate"
    NEGATIVE_UNATE = "negative_unate"
    NON_UNATE = "non_unate"


@dataclass(frozen=True)
class LutTemplate:
    """A ``lu_table_template`` group: named index axes shared by LUTs."""

    name: str
    variable_1: str = "input_net_transition"
    variable_2: str = "total_output_net_capacitance"
    index_1: Tuple[float, ...] = ()
    index_2: Tuple[float, ...] = ()

    def shape(self) -> Tuple[int, int]:
        """Return the (rows, cols) shape implied by the index axes."""
        return (len(self.index_1), len(self.index_2))


class Lut:
    """A two-dimensional NLDM look-up table.

    Parameters
    ----------
    index_1:
        Input transition (slew) axis, strictly increasing, in ns.
    index_2:
        Output load axis, strictly increasing, in pF.
    values:
        2-D array of shape ``(len(index_1), len(index_2))``.
    template:
        Optional name of the ``lu_table_template`` the LUT refers to.
    """

    __slots__ = ("index_1", "index_2", "values", "template")

    def __init__(
        self,
        index_1: Iterable[float],
        index_2: Iterable[float],
        values: Iterable[Iterable[float]],
        template: str = "",
    ):
        self.index_1 = np.asarray(list(index_1), dtype=float)
        self.index_2 = np.asarray(list(index_2), dtype=float)
        self.values = np.asarray(values, dtype=float)
        self.template = template
        self._validate()

    def _validate(self) -> None:
        if self.index_1.ndim != 1 or self.index_2.ndim != 1:
            raise LutError("LUT index axes must be one-dimensional")
        if self.index_1.size < 2 or self.index_2.size < 2:
            raise LutError("LUT needs at least 2 points per axis")
        if self.values.shape != (self.index_1.size, self.index_2.size):
            raise LutError(
                f"LUT values shape {self.values.shape} does not match axes "
                f"({self.index_1.size}, {self.index_2.size})"
            )
        if np.any(np.diff(self.index_1) <= 0) or np.any(np.diff(self.index_2) <= 0):
            raise LutError("LUT index axes must be strictly increasing")

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the value grid: (slew points, load points)."""
        return self.values.shape  # type: ignore[return-value]

    def copy(self) -> "Lut":
        """Deep copy of the LUT."""
        return Lut(self.index_1.copy(), self.index_2.copy(), self.values.copy(), self.template)

    def with_values(self, values: np.ndarray) -> "Lut":
        """Return a new LUT with the same axes and the given values."""
        return Lut(self.index_1, self.index_2, values, self.template)

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation at (slew, load); see :mod:`repro.liberty.lut`."""
        from repro.liberty.lut import bilinear_interpolate

        return bilinear_interpolate(self, slew, load)

    def same_axes(self, other: "Lut") -> bool:
        """True when both LUTs share identical index axes."""
        return (
            self.index_1.size == other.index_1.size
            and self.index_2.size == other.index_2.size
            and bool(np.allclose(self.index_1, other.index_1))
            and bool(np.allclose(self.index_2, other.index_2))
        )

    def allclose(self, other: "Lut", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """True when axes and values match within tolerance."""
        return self.same_axes(other) and bool(
            np.allclose(self.values, other.values, rtol=rtol, atol=atol)
        )

    @staticmethod
    def elementwise_max(luts: Iterable["Lut"]) -> "Lut":
        """Maximum-equivalent LUT over several LUTs with identical axes.

        This is the "maximum equivalent look-up table" of paper
        Sec. VI.B/VI.C: each entry is the worst (largest) value of the
        corresponding entries across the input tables.
        """
        luts = list(luts)
        if not luts:
            raise LutError("elementwise_max needs at least one LUT")
        first = luts[0]
        for lut in luts[1:]:
            if not first.same_axes(lut):
                raise LutError("elementwise_max requires identical LUT axes")
        stacked = np.stack([lut.values for lut in luts])
        return first.with_values(stacked.max(axis=0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lut(shape={self.shape}, slew=[{self.index_1[0]:g}..{self.index_1[-1]:g}] "
            f"{TIME_UNIT}, load=[{self.index_2[0]:g}..{self.index_2[-1]:g}] {CAP_UNIT})"
        )


@dataclass
class TimingArc:
    """A timing arc from ``related_pin`` to the output pin owning it.

    For nominal / Monte-Carlo libraries the four NLDM tables hold delay
    and output-transition values.  For a *statistical* library
    (Sec. IV), ``cell_rise``/``cell_fall`` hold per-entry means and
    ``sigma_rise``/``sigma_fall`` hold per-entry standard deviations.
    """

    related_pin: str
    timing_sense: TimingSense = TimingSense.NEGATIVE_UNATE
    cell_rise: Optional[Lut] = None
    cell_fall: Optional[Lut] = None
    rise_transition: Optional[Lut] = None
    fall_transition: Optional[Lut] = None
    sigma_rise: Optional[Lut] = None
    sigma_fall: Optional[Lut] = None
    #: Switching energy per transition (pJ); present when the library
    #: was characterized with power (paper Sec. II mentions the .lib
    #: power groups; Sec. III the power extension of the metric).
    power_rise: Optional[Lut] = None
    power_fall: Optional[Lut] = None
    sigma_power_rise: Optional[Lut] = None
    sigma_power_fall: Optional[Lut] = None

    def delay_tables(self) -> List[Lut]:
        """The delay LUTs present on this arc (cell_rise/cell_fall)."""
        return [t for t in (self.cell_rise, self.cell_fall) if t is not None]

    def transition_tables(self) -> List[Lut]:
        """The output-transition LUTs present on this arc."""
        return [t for t in (self.rise_transition, self.fall_transition) if t is not None]

    def sigma_tables(self) -> List[Lut]:
        """The delay-sigma LUTs present on this arc (statistical libs)."""
        return [t for t in (self.sigma_rise, self.sigma_fall) if t is not None]

    def power_tables(self) -> List[Lut]:
        """Switching-energy LUTs present on this arc."""
        return [t for t in (self.power_rise, self.power_fall) if t is not None]

    def power_sigma_tables(self) -> List[Lut]:
        """Energy-sigma LUTs present on this arc (statistical libs)."""
        return [
            t for t in (self.sigma_power_rise, self.sigma_power_fall) if t is not None
        ]

    def all_tables(self) -> List[Lut]:
        """Every LUT attached to the arc, in a stable order."""
        return (
            self.delay_tables()
            + self.transition_tables()
            + self.sigma_tables()
            + self.power_tables()
            + self.power_sigma_tables()
        )

    def worst_delay(self, slew: float, load: float) -> float:
        """Worst (max) of rise/fall delay at the given conditions."""
        tables = self.delay_tables()
        if not tables:
            raise LibertyError(f"arc from {self.related_pin} has no delay tables")
        return max(t.lookup(slew, load) for t in tables)

    def worst_transition(self, slew: float, load: float) -> float:
        """Worst (max) of rise/fall output transition at the conditions."""
        tables = self.transition_tables()
        if not tables:
            raise LibertyError(f"arc from {self.related_pin} has no transition tables")
        return max(t.lookup(slew, load) for t in tables)

    def worst_sigma(self, slew: float, load: float) -> float:
        """Worst (max) of rise/fall delay sigma at the conditions."""
        tables = self.sigma_tables()
        if not tables:
            raise LibertyError(f"arc from {self.related_pin} has no sigma tables")
        return max(t.lookup(slew, load) for t in tables)


@dataclass
class Pin:
    """A cell pin.

    Input pins carry ``capacitance``; output pins carry ``function``,
    ``max_capacitance`` and the timing arcs ending at them.
    """

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    function: str = ""
    max_capacitance: float = 0.0
    is_clock: bool = False
    timing: List[TimingArc] = field(default_factory=list)

    def arc_from(self, related_pin: str) -> TimingArc:
        """Return the timing arc whose related pin is ``related_pin``."""
        for arc in self.timing:
            if arc.related_pin == related_pin:
                return arc
        raise LibertyError(f"pin {self.name}: no arc from {related_pin}")

    def has_arc_from(self, related_pin: str) -> bool:
        """True when an arc from ``related_pin`` exists on this pin."""
        return any(arc.related_pin == related_pin for arc in self.timing)


@dataclass
class Cell:
    """A standard cell: pins, area and sequential metadata."""

    name: str
    area: float = 0.0
    pins: Dict[str, Pin] = field(default_factory=dict)
    is_sequential: bool = False
    #: Non-empty for flip-flops/latches: name of the clock/enable pin.
    clock_pin: str = ""
    #: Setup time (ns) for sequential cells (simplified scalar model).
    setup_time: float = 0.0
    #: Clock-to-output delay handled via a regular timing arc from the
    #: clock pin; this flag only marks latch (level-sensitive) cells.
    is_latch: bool = False

    def add_pin(self, pin: Pin) -> Pin:
        """Add a pin, rejecting duplicates."""
        if pin.name in self.pins:
            raise LibertyError(f"cell {self.name}: duplicate pin {pin.name}")
        self.pins[pin.name] = pin
        return pin

    def pin(self, name: str) -> Pin:
        """Return the pin called ``name``."""
        try:
            return self.pins[name]
        except KeyError:
            raise LibertyError(f"cell {self.name}: no pin {name}") from None

    def input_pins(self) -> List[Pin]:
        """All input pins, in insertion order."""
        return [p for p in self.pins.values() if p.direction is PinDirection.INPUT]

    def output_pins(self) -> List[Pin]:
        """All output pins, in insertion order."""
        return [p for p in self.pins.values() if p.direction is PinDirection.OUTPUT]

    def data_input_pins(self) -> List[Pin]:
        """Input pins excluding the clock pin (for sequential cells)."""
        return [p for p in self.input_pins() if not p.is_clock]

    def arcs(self) -> Iterator[Tuple[Pin, TimingArc]]:
        """Iterate over (output pin, arc) pairs of the cell."""
        for pin in self.output_pins():
            for arc in pin.timing:
                yield pin, arc

    def arc_count(self) -> int:
        """Total number of timing arcs in the cell."""
        return sum(len(p.timing) for p in self.output_pins())


@dataclass
class OperatingConditions:
    """Liberty ``operating_conditions``: PVT point of the library."""

    name: str = "TT1P1V25C"
    process: float = 1.0
    voltage: float = NOMINAL_VDD
    temperature: float = NOMINAL_TEMPERATURE


class Library:
    """A Liberty library: a named collection of cells plus metadata."""

    def __init__(
        self,
        name: str,
        operating_conditions: Optional[OperatingConditions] = None,
        time_unit: str = TIME_UNIT,
        cap_unit: str = CAP_UNIT,
    ):
        self.name = name
        self.operating_conditions = operating_conditions or OperatingConditions()
        self.time_unit = time_unit
        self.cap_unit = cap_unit
        self.templates: Dict[str, LutTemplate] = {}
        self.cells: Dict[str, Cell] = {}
        #: True when the library stores statistics (mean/sigma) rather
        #: than a single nominal sample.
        self.is_statistical = False

    def add_template(self, template: LutTemplate) -> LutTemplate:
        """Register a LUT template, rejecting duplicates."""
        if template.name in self.templates:
            raise LibertyError(f"duplicate lu_table_template {template.name}")
        self.templates[template.name] = template
        return template

    def add_cell(self, cell: Cell) -> Cell:
        """Register a cell, rejecting duplicates."""
        if cell.name in self.cells:
            raise LibertyError(f"duplicate cell {cell.name}")
        self.cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> Cell:
        """Return the cell called ``name``."""
        try:
            return self.cells[name]
        except KeyError:
            raise LibertyError(f"library {self.name}: no cell {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def combinational_cells(self) -> List[Cell]:
        """All non-sequential cells."""
        return [c for c in self if not c.is_sequential]

    def sequential_cells(self) -> List[Cell]:
        """All flip-flop and latch cells."""
        return [c for c in self if c.is_sequential]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "statistical" if self.is_statistical else "nominal"
        return f"Library({self.name!r}, {len(self)} cells, {kind})"
