"""The five tuning methods and their constraint parameters (Table 2).

=============================  ==========  =============  =================
method                         clustering  swept bound    paper name
=============================  ==========  =============  =================
``cell_strength_slew_slope``   strength    slew slope     Cell strength based slew slope bound
``cell_strength_load_slope``   strength    load slope     Cell strength based load slope bound
``cell_slew_slope``            cell        slew slope     Cell based slew slope bound
``cell_load_slope``            cell        load slope     Cell based load slope bound
``sigma_ceiling``              global      sigma ceiling  Cell based sigma ceiling
=============================  ==========  =============  =================

"During the cell selection stage, only one parameter is varied while
the other two stay at the default value" — defaults (Table 2):
load slope 1, slew slope 0.06, sigma ceiling 100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import TuningError

#: Table 2 default constraint parameters (the non-swept values).
DEFAULT_BOUNDS: Dict[str, float] = {
    "load_slope": 1.0,
    "slew_slope": 0.06,
    "sigma_ceiling": 100.0,
}

#: Table 2 sweep values per bound kind.
SWEEP_VALUES: Dict[str, Tuple[float, ...]] = {
    "load_slope": (1.0, 0.05, 0.03, 0.01),
    "slew_slope": (1.0, 0.05, 0.03, 0.01),
    "sigma_ceiling": (0.04, 0.03, 0.02, 0.01),
}


@dataclass(frozen=True)
class TuningMethod:
    """One of the paper's five tuning methods."""

    name: str
    #: ``strength`` (per drive strength), ``cell`` (individual) or
    #: ``global`` (sigma ceiling: one threshold for everything).
    clustering: str
    #: Which bound the method sweeps: ``load_slope``, ``slew_slope`` or
    #: ``sigma_ceiling``.
    kind: str
    #: Human-readable name as printed in the paper's figures.
    paper_name: str = ""

    def bounds(self, parameter: float) -> Dict[str, float]:
        """Full bound set with ``parameter`` substituted for the swept
        bound and Table 2 defaults for the others."""
        if parameter <= 0:
            raise TuningError(f"{self.name}: constraint parameter must be positive")
        bounds = dict(DEFAULT_BOUNDS)
        bounds[self.kind] = float(parameter)
        return bounds

    def sweep_values(self) -> Tuple[float, ...]:
        """The Table 2 sweep values for this method's bound."""
        return SWEEP_VALUES[self.kind]


TUNING_METHODS: Dict[str, TuningMethod] = {
    method.name: method
    for method in (
        TuningMethod(
            name="cell_strength_slew_slope",
            clustering="strength",
            kind="slew_slope",
            paper_name="Cell strength based slew slope bound",
        ),
        TuningMethod(
            name="cell_strength_load_slope",
            clustering="strength",
            kind="load_slope",
            paper_name="Cell strength based load slope bound",
        ),
        TuningMethod(
            name="cell_slew_slope",
            clustering="cell",
            kind="slew_slope",
            paper_name="Cell based slew slope bound",
        ),
        TuningMethod(
            name="cell_load_slope",
            clustering="cell",
            kind="load_slope",
            paper_name="Cell based load slope bound",
        ),
        TuningMethod(
            name="sigma_ceiling",
            clustering="global",
            kind="sigma_ceiling",
            paper_name="Cell based sigma ceiling",
        ),
    )
}


def method_by_name(name: str) -> TuningMethod:
    """Look up one of the five methods by its short name."""
    try:
        return TUNING_METHODS[name]
    except KeyError:
        raise TuningError(
            f"unknown tuning method {name!r}; available: {sorted(TUNING_METHODS)}"
        ) from None
