"""STA fixtures: small mapped designs over the reduced library."""

from __future__ import annotations

import pytest

from repro.cells.catalog import family_strengths
from repro.cells.naming import format_cell_name, parse_cell_name
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Netlist


def bind_all(netlist: Netlist, specs, strength: float = 2.0) -> Netlist:
    """Bind every instance to its family's closest-to-``strength`` cell."""
    cache = {}
    for instance in netlist:
        if instance.family not in cache:
            strengths = family_strengths(specs, instance.family)
            chosen = min(strengths, key=lambda s: abs(s - strength))
            parsed = parse_cell_name(f"{instance.family}_1")
            cache[instance.family] = format_cell_name(
                parsed.function, chosen, n_inputs=parsed.n_inputs,
                ability=parsed.ability,
            )
        instance.cell = cache[instance.family]
    return netlist


@pytest.fixture()
def chain_netlist(small_specs):
    """clk -> DFF -> INV -> INV -> ND2 -> DFF, plus an output port."""
    builder = NetlistBuilder("chain")
    builder.clock()
    d_in = builder.input("d_in")
    side = builder.input("side")
    q0 = builder.dff(d_in)
    n1 = builder.inv(q0)
    n2 = builder.inv(n1)
    n3 = builder.nand(n2, side)
    builder.dff(n3)
    builder.output("y", n3)
    netlist = builder.netlist
    netlist.validate()
    return bind_all(netlist, small_specs)


@pytest.fixture()
def adder_netlist(small_specs):
    """Registered 8-bit ripple adder (deep carry chain)."""
    builder = NetlistBuilder("regadd")
    builder.clock()
    a = builder.input_bus("a", 8)
    b = builder.input_bus("b", 8)
    a_reg = builder.register(a)
    b_reg = builder.register(b)
    total, carry = builder.ripple_adder(a_reg, b_reg)
    builder.register(total + [carry])
    builder.output("co", carry)
    netlist = builder.netlist
    netlist.validate()
    return bind_all(netlist, small_specs)
