"""Library characterization: grids, tables, statistics, determinism."""

import numpy as np
import pytest

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer
from repro.characterization.grids import GridConfig, load_grid, slew_grid
from repro.errors import CharacterizationError
from repro.variation.process import slow_corner


class TestGrids:
    def test_slew_grid_shared_and_increasing(self):
        config = GridConfig()
        grid = slew_grid(config)
        assert grid.size == config.n_slew
        assert np.all(np.diff(grid) > 0)
        assert grid[0] == pytest.approx(config.slew_min)
        assert grid[-1] == pytest.approx(config.slew_max)

    def test_load_grid_scales_with_strength(self):
        config = GridConfig()
        specs = build_catalog(families=["INV"])
        inv1 = next(s for s in specs if s.name == "INV_1")
        inv8 = next(s for s in specs if s.name == "INV_8")
        assert load_grid(config, inv8)[-1] == pytest.approx(8 * load_grid(config, inv1)[-1])

    def test_bad_grid_config_rejected(self):
        with pytest.raises(CharacterizationError):
            GridConfig(n_slew=1)
        with pytest.raises(CharacterizationError):
            GridConfig(slew_min=0.5, slew_max=0.1)


class TestNominal:
    def test_all_cells_characterized(self, nominal_library, small_specs):
        assert len(nominal_library) == len(small_specs)

    def test_tables_have_grid_shape(self, nominal_library, characterizer):
        grid = characterizer.grid
        for cell in nominal_library:
            for _pin, arc in cell.arcs():
                assert arc.cell_rise.shape == (grid.n_slew, grid.n_load)
                assert arc.rise_transition.shape == (grid.n_slew, grid.n_load)

    def test_delays_positive_and_finite(self, nominal_library):
        for cell in nominal_library:
            for _pin, arc in cell.arcs():
                for table in arc.all_tables():
                    assert np.all(np.isfinite(table.values))
                    assert np.all(table.values > 0)

    def test_sequential_metadata(self, nominal_library):
        dff = nominal_library.cell("DFF_2")
        assert dff.is_sequential
        assert dff.clock_pin == "CP"
        assert dff.setup_time > 0
        assert dff.pin("CP").is_clock
        latch = nominal_library.cell("LATQ_2")
        assert latch.is_latch

    def test_input_caps_positive(self, nominal_library):
        for cell in nominal_library:
            for pin in cell.input_pins():
                assert pin.capacitance > 0

    def test_max_capacitance_set(self, nominal_library):
        for cell in nominal_library:
            for pin in cell.output_pins():
                assert pin.max_capacitance > 0


class TestStatistical:
    def test_sigma_tables_present(self, statistical_library):
        for cell in statistical_library:
            for _pin, arc in cell.arcs():
                assert arc.sigma_rise is not None
                assert arc.sigma_fall is not None
                assert np.all(arc.sigma_rise.values > 0)

    def test_marked_statistical(self, statistical_library):
        assert statistical_library.is_statistical

    def test_mean_close_to_nominal(self, nominal_library, statistical_library):
        """Local variation is zero-mean in the *parameters*, so MC means
        track nominal delays; delay is convex in vth (Jensen), so a
        small upward bias is expected and allowed."""
        for name in ("INV_1", "ND2_2", "ADDF_4"):
            nom = nominal_library.cell(name).output_pins()[0].timing[0].cell_fall
            mean = statistical_library.cell(name).output_pins()[0].timing[0].cell_fall
            assert np.allclose(mean.values, nom.values, rtol=0.15)
            # Jensen bias: MC mean should not undershoot nominal by much
            assert np.all(mean.values > nom.values * 0.95)

    def test_sigma_decreases_with_drive_strength(self, statistical_library):
        """Paper Fig. 4: INV_32's surface is lower than INV_1's."""
        sig1 = statistical_library.cell("INV_1").pin("Z").arc_from("A").sigma_fall
        sig8 = statistical_library.cell("INV_8").pin("Z").arc_from("A").sigma_fall
        assert sig8.values.max() < sig1.values.max()
        assert sig8.values.mean() < sig1.values.mean()

    def test_sigma_grows_towards_high_slew_and_load(self, statistical_library):
        """Paper Fig. 4: surfaces rise away from the origin."""
        sigma = statistical_library.cell("INV_1").pin("Z").arc_from("A").sigma_fall
        assert sigma.values[0, 0] == sigma.values.min()
        assert sigma.values[-1, -1] == sigma.values.max()

    def test_determinism(self, characterizer, small_specs):
        a = characterizer.statistical_library(small_specs, n_samples=10, seed=3)
        b = characterizer.statistical_library(small_specs, n_samples=10, seed=3)
        for name in a.cells:
            arc_a = a.cell(name).output_pins()[0].timing[0]
            arc_b = b.cell(name).output_pins()[0].timing[0]
            assert arc_a.sigma_fall.allclose(arc_b.sigma_fall)

    def test_different_seed_changes_sigma(self, characterizer, small_specs):
        a = characterizer.statistical_library(small_specs, n_samples=10, seed=3)
        b = characterizer.statistical_library(small_specs, n_samples=10, seed=4)
        arc_a = a.cell("INV_1").pin("Z").arc_from("A")
        arc_b = b.cell("INV_1").pin("Z").arc_from("A")
        assert not arc_a.sigma_fall.allclose(arc_b.sigma_fall)

    def test_too_few_samples_rejected(self, characterizer, small_specs):
        with pytest.raises(CharacterizationError):
            characterizer.statistical_library(small_specs, n_samples=1)


class TestSampleLibraries:
    def test_samples_differ_from_each_other(self, characterizer, small_specs):
        libraries = characterizer.sample_libraries(small_specs[:2], n_samples=3, seed=1)
        t0 = libraries[0].cell(small_specs[0].name).output_pins()[0].timing[0].cell_fall
        t1 = libraries[1].cell(small_specs[0].name).output_pins()[0].timing[0].cell_fall
        assert not t0.allclose(t1)

    def test_global_variation_shifts_whole_library(self, characterizer, small_specs):
        libraries = characterizer.sample_libraries(
            small_specs[:3], n_samples=4, seed=1, include_global=True
        )
        locals_only = characterizer.sample_libraries(
            small_specs[:3], n_samples=4, seed=1, include_global=False
        )
        # same local draws, so the difference is the global shift,
        # which must move every cell of a sample the same direction
        for k in range(4):
            shifts = []
            for spec in small_specs[:3]:
                with_g = libraries[k].cell(spec.name).output_pins()[0].timing[0]
                without = locals_only[k].cell(spec.name).output_pins()[0].timing[0]
                shifts.append(
                    np.sign((with_g.cell_fall.values - without.cell_fall.values).mean())
                )
            assert len(set(shifts)) == 1


class TestCorners:
    def test_slow_corner_library_slower(self, small_specs):
        typical = Characterizer().nominal_library(small_specs[:2])
        slow = Characterizer(corner=slow_corner()).nominal_library(small_specs[:2])
        for spec in small_specs[:2]:
            t_typ = typical.cell(spec.name).output_pins()[0].timing[0].cell_fall
            t_slow = slow.cell(spec.name).output_pins()[0].timing[0].cell_fall
            assert np.all(t_slow.values > t_typ.values)

    def test_corner_recorded_in_operating_conditions(self, small_specs):
        library = Characterizer(corner=slow_corner()).nominal_library(small_specs[:1])
        assert library.operating_conditions.name.startswith("SS")
