"""Command-line entry point: reproduce the paper's tables and figures.

Usage::

    python -m repro list                  # available experiments
    python -m repro run fig04 table2      # run a selection
    python -m repro fig10                 # shorthand for `run fig10`
    python -m repro run --all             # everything (synthesis-heavy)
    python -m repro run --all --jobs 0    # characterize on every CPU
    python -m repro run fig07 --no-cache  # bypass the on-disk caches
    python -m repro run fig10 --manifest  # print the stage manifest
    python -m repro fig10 --trace out.jsonl   # record a JSONL trace
    python -m repro fig10 --profile       # print the per-stage time tree
    python -m repro run --all --trace-dir traces/  # one trace per experiment
    python -m repro store stats           # cache location and size
    python -m repro store clear           # drop libraries and artifacts
    REPRO_SCALE=paper python -m repro run table1   # full-scale flow

Every pipeline stage (characterized library, tuning, synthesis, worst
paths, design statistics, minimum-period search) is content-addressed
and memoized under ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``); a warm
store makes repeated runs skip synthesis entirely, ``--jobs`` fans both
characterization and the evaluation sweep out over worker processes
with bit-identical results, and ``--manifest`` prints what each run
served from the store versus computed.

``--trace PATH`` records every span and counter of the run — including
those of worker processes — to a JSONL file (see
:mod:`repro.observe`); ``--profile`` prints the per-stage time tree and
counter totals on completion.  Both change *observation only*: traced
results are bit-identical to untraced ones.

The execution flags (``--jobs``, ``--no-cache``, ``--manifest``,
``--trace``, ``--profile``) are defined once on a shared parent parser,
so every run-like invocation accepts the same set.  ``cache`` remains a
deprecated alias of ``store``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    LIBRARY_ONLY,
    build_context,
    run_experiments,
)


def _shared_options() -> argparse.ArgumentParser:
    """The parent parser holding the execution flags shared by every
    run-like subcommand (defined once, inherited via ``parents=``)."""
    shared = argparse.ArgumentParser(add_help=False)
    group = shared.add_argument_group("execution options")
    group.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for characterization and the evaluation "
        "sweep (1 = serial, 0 = one per CPU; default from REPRO_JOBS)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk library cache and "
        "artifact store",
    )
    group.add_argument(
        "--manifest",
        action="store_true",
        help="after each experiment, print the run manifest (stage "
        "fingerprints, cache hit/miss, wall time)",
    )
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a JSONL trace of the run (spans, counters — worker "
        "processes included) to PATH",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage time tree and counter totals when the "
        "run finishes",
    )
    group.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="write one standalone trace artifact per experiment "
        "(DIR/<id>.trace.jsonl)",
    )
    return shared


def _build_parser() -> argparse.ArgumentParser:
    """The full CLI parser: list / run / store (+ the ``cache`` alias)."""
    shared = _shared_options()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Standard Cell Library Tuning for "
        "Variability Tolerant Designs' (DATE 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser(
        "run", help="run experiments", parents=[shared]
    )
    run_parser.add_argument("ids", nargs="*", help="experiment ids (see list)")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--library-only",
        action="store_true",
        help="run only the fast, synthesis-free experiments",
    )
    for name, help_text in (
        ("store", "inspect or clear the library cache and artifact store"),
        ("cache", "deprecated alias of 'store'"),
    ):
        store_parser = sub.add_parser(name, help=help_text)
        store_parser.add_argument(
            "action",
            choices=("stats", "clear"),
            help="what to do with the on-disk state",
        )
    return parser


def _run_store_command(action: str) -> int:
    """Handle ``python -m repro store stats|clear`` for both halves of
    the on-disk state: the ``.npz`` library cache and the staged
    artifact store."""
    from repro.parallel import ArtifactStore, LibraryCache

    cache = LibraryCache()
    store = ArtifactStore()
    if action == "stats":
        print(cache.stats().to_text())
        print(store.stats().to_text())
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.directory}")
    removed = store.clear()
    print(f"removed {removed} stage artifacts from {store.directory}")
    return 0


def _normalize_argv(argv: List[str]) -> List[str]:
    """Allow an experiment id as a direct subcommand.

    ``python -m repro fig10 --trace out.jsonl`` is rewritten to
    ``run fig10 --trace out.jsonl`` — the common case deserves the
    short spelling.
    """
    if argv and argv[0] in ALL_EXPERIMENTS:
        return ["run"] + argv
    return argv


def _build_run_tracer(args: argparse.Namespace):
    """The tracer implied by ``--trace``/``--profile`` (or ``None``).

    ``--trace`` gets a (truncated) file-backed tracer so worker
    processes merge into the same JSONL file; ``--profile`` alone uses
    an in-memory sink — enough for the parent-side time tree.
    """
    if not args.trace and not args.profile:
        return None
    from repro.observe import JsonlExporter, MemorySink, Tracer

    sink = (
        JsonlExporter(args.trace, truncate=True)
        if args.trace
        else MemorySink()
    )
    return Tracer(sink)


def _report_trace(tracer, args: argparse.Namespace) -> None:
    """Close out the run's tracer: flush, then print what was asked.

    With ``--trace`` the tree is rebuilt from the file, so spans and
    counter deltas appended by worker processes are included.
    """
    from repro.observe import Trace, load_trace, render_trace, set_tracer

    tracer.finish()
    set_tracer(None)
    if args.trace:
        trace = load_trace(args.trace)
        print(f"[trace: {len(trace.spans)} spans written to {args.trace}]")
    else:
        trace = Trace(
            spans=[span.to_record() for span in tracer.spans],
            counters=tracer.counters(),
            gauges=tracer.gauges(),
        )
    if args.profile:
        print(render_trace(trace))


def main(argv: List[str]) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    argv = _normalize_argv(argv)
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__module__.split(".")[-1]).replace("_", " ")
            tag = " (library-only)" if experiment_id in LIBRARY_ONLY else ""
            print(f"{experiment_id:8s} {doc}{tag}")
        return 0
    if args.command in ("store", "cache"):
        if args.command == "cache":
            print(
                "note: 'cache' is deprecated; use 'python -m repro store "
                f"{args.action}'",
                file=sys.stderr,
            )
        return _run_store_command(args.action)

    if args.all:
        ids = list(ALL_EXPERIMENTS)
    elif args.library_only:
        ids = list(LIBRARY_ONLY)
    else:
        ids = args.ids
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'python -m repro list'")
        return 2
    if not ids:
        print("nothing to run; pass experiment ids, --all or --library-only")
        return 2

    tracer = _build_run_tracer(args)
    context = build_context(
        jobs=args.jobs, cache=False if args.no_cache else None, tracer=tracer
    )
    for experiment_id in ids:
        start = time.time()
        result = run_experiments(
            context, ids=[experiment_id], trace_dir=args.trace_dir
        )[experiment_id]
        print(result.to_text())
        print(f"[{experiment_id} finished in {time.time() - start:.1f}s]\n")
    if args.manifest:
        print(context.flow.manifest.to_text())
    if tracer is not None:
        _report_trace(tracer, args)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
