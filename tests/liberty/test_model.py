"""Liberty data-model invariants."""

import pytest

from repro.errors import LibertyError
from repro.liberty.model import (
    Cell,
    Library,
    Lut,
    Pin,
    PinDirection,
    TimingArc,
    TimingSense,
)


def make_lut(values):
    return Lut((0.1, 0.2), (0.001, 0.002), values)


def make_arc(**kwargs):
    defaults = dict(
        related_pin="A",
        cell_rise=make_lut([[1.0, 2.0], [3.0, 4.0]]),
        cell_fall=make_lut([[1.5, 2.5], [3.5, 4.5]]),
        rise_transition=make_lut([[0.1, 0.2], [0.3, 0.4]]),
        fall_transition=make_lut([[0.15, 0.25], [0.35, 0.45]]),
    )
    defaults.update(kwargs)
    return TimingArc(**defaults)


class TestTimingArc:
    def test_worst_delay_is_max_of_rise_fall(self):
        arc = make_arc()
        assert arc.worst_delay(0.1, 0.001) == pytest.approx(1.5)

    def test_worst_transition(self):
        arc = make_arc()
        assert arc.worst_transition(0.2, 0.002) == pytest.approx(0.45)

    def test_sigma_tables_empty_by_default(self):
        assert make_arc().sigma_tables() == []

    def test_worst_sigma_requires_sigma_tables(self):
        with pytest.raises(LibertyError):
            make_arc().worst_sigma(0.1, 0.001)

    def test_all_tables_count(self):
        arc = make_arc(sigma_rise=make_lut([[0.0, 0.0], [0.0, 0.0]]))
        assert len(arc.all_tables()) == 5


class TestCell:
    def make_cell(self):
        cell = Cell(name="ND2_1")
        cell.add_pin(Pin("A", PinDirection.INPUT, capacitance=0.001))
        cell.add_pin(Pin("B", PinDirection.INPUT, capacitance=0.001))
        out = Pin("Z", PinDirection.OUTPUT, function="!(A*B)")
        out.timing.append(make_arc(related_pin="A"))
        out.timing.append(make_arc(related_pin="B"))
        cell.add_pin(out)
        return cell

    def test_pin_lookup(self):
        cell = self.make_cell()
        assert cell.pin("A").direction is PinDirection.INPUT

    def test_unknown_pin_raises(self):
        with pytest.raises(LibertyError):
            self.make_cell().pin("Q")

    def test_duplicate_pin_rejected(self):
        cell = self.make_cell()
        with pytest.raises(LibertyError):
            cell.add_pin(Pin("A", PinDirection.INPUT))

    def test_arc_from(self):
        cell = self.make_cell()
        assert cell.pin("Z").arc_from("B").related_pin == "B"

    def test_arc_count(self):
        assert self.make_cell().arc_count() == 2

    def test_input_output_partition(self):
        cell = self.make_cell()
        assert [p.name for p in cell.input_pins()] == ["A", "B"]
        assert [p.name for p in cell.output_pins()] == ["Z"]


class TestLibrary:
    def test_add_and_lookup(self):
        library = Library("test")
        library.add_cell(Cell(name="INV_1"))
        assert "INV_1" in library
        assert library.cell("INV_1").name == "INV_1"

    def test_duplicate_cell_rejected(self):
        library = Library("test")
        library.add_cell(Cell(name="INV_1"))
        with pytest.raises(LibertyError):
            library.add_cell(Cell(name="INV_1"))

    def test_unknown_cell_raises(self):
        with pytest.raises(LibertyError):
            Library("test").cell("nope")

    def test_sequential_partition(self):
        library = Library("test")
        library.add_cell(Cell(name="INV_1"))
        library.add_cell(Cell(name="DFF_1", is_sequential=True))
        assert [c.name for c in library.combinational_cells()] == ["INV_1"]
        assert [c.name for c in library.sequential_cells()] == ["DFF_1"]

    def test_len_and_iter(self):
        library = Library("test")
        library.add_cell(Cell(name="INV_1"))
        library.add_cell(Cell(name="INV_2"))
        assert len(library) == 2
        assert sorted(c.name for c in library) == ["INV_1", "INV_2"]

    def test_timing_sense_values_match_liberty(self):
        assert TimingSense.POSITIVE_UNATE.value == "positive_unate"
        assert TimingSense.NON_UNATE.value == "non_unate"
