"""Dispersion metrics and streaming statistics (paper Sec. III).

The paper weighs two candidate metrics for a cell's sensitivity to
local variation:

* the **coefficient of variation** (a.k.a. variability),
  ``sigma / mu`` (paper eq. 1) — rejected, because two distributions
  with identical variability can have very different absolute spread
  (paper Fig. 1);
* the **standard deviation** — adopted, since the synthesis tool
  already optimizes the mean, so sigma alone captures the spread.

Both are provided here; the Fig. 1 bench reproduces the selection
pitfall numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.errors import ReproError


def coefficient_of_variation(mean: float, sigma: float) -> float:
    """Variability = sigma / mean (paper eq. 1)."""
    if mean == 0:
        raise ReproError("coefficient of variation undefined for zero mean")
    return sigma / mean


def mean_sigma(samples: Iterable[float], ddof: int = 1) -> Tuple[float, float]:
    """Sample mean and standard deviation of an iterable of values."""
    array = np.asarray(list(samples), dtype=float)
    if array.size < 2:
        raise ReproError("need at least 2 samples for a standard deviation")
    return float(array.mean()), float(array.std(ddof=ddof))


@dataclass
class RunningStats:
    """Welford streaming mean/variance accumulator.

    Numerically stable for combining LUT entries across many sample
    libraries without materializing the full sample tensor; supports
    array-shaped observations so one accumulator handles a whole LUT.
    """

    count: int = 0
    _mean: np.ndarray = None  # type: ignore[assignment]
    _m2: np.ndarray = None  # type: ignore[assignment]

    def update(self, value: np.ndarray) -> None:
        """Fold one observation (scalar or array) into the statistics."""
        value = np.asarray(value, dtype=float)
        if self.count == 0:
            self._mean = np.zeros_like(value)
            self._m2 = np.zeros_like(value)
        elif value.shape != self._mean.shape:
            raise ReproError(
                f"observation shape {value.shape} does not match {self._mean.shape}"
            )
        self.count += 1
        delta = value - self._mean
        self._mean = self._mean + delta / self.count
        self._m2 = self._m2 + delta * (value - self._mean)

    @property
    def mean(self) -> np.ndarray:
        """Mean of the observations so far."""
        if self.count == 0:
            raise ReproError("no observations accumulated")
        return self._mean

    def sigma(self, ddof: int = 1) -> np.ndarray:
        """Standard deviation (sample std by default, as the paper's
        Monte-Carlo estimate)."""
        if self.count < 2:
            raise ReproError("need at least 2 observations for sigma")
        if ddof >= self.count:
            raise ReproError(f"ddof {ddof} too large for {self.count} observations")
        return np.sqrt(self._m2 / (self.count - ddof))


def normal_pdf(x: np.ndarray, mean: float, sigma: float) -> np.ndarray:
    """Normal probability density (used by example plots/reports)."""
    if sigma <= 0:
        raise ReproError("sigma must be positive")
    x = np.asarray(x, dtype=float)
    z = (x - mean) / sigma
    return np.exp(-0.5 * z * z) / (sigma * math.sqrt(2.0 * math.pi))
