"""Monte-Carlo replay of extracted timing paths (paper Sec. VII.C).

The paper extracts a short, a medium and a long path from the baseline
design and re-simulates them in SPICE with process variation, across
corners and with/without global variation (Figs. 15-16).  Here the
"SPICE rerun" is a replay through the analytical delay model: each
path step keeps the slew/load the STA timed it at, and per-sample
perturbations (local per-arc mismatch, optional shared global shift)
move its delay.

The replay is vectorized across samples, so 200-sample Monte Carlo of
a 60-cell path costs a few milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cells.catalog import CellSpec
from repro.characterization.delaymodel import GateDelayModel
from repro.characterization.devices import network_geometry
from repro.errors import ReproError
from repro.sta.paths import TimingPath
from repro.variation.montecarlo import GlobalSigmas
from repro.variation.pelgrom import PelgromModel
from repro.variation.process import Corner, TechnologyParams, typical_corner


@dataclass(frozen=True)
class PathMcResult:
    """Samples and summary statistics of one path replay."""

    corner: str
    delays: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.delays.mean())

    @property
    def sigma(self) -> float:
        return float(self.delays.std(ddof=1))


class PathMonteCarlo:
    """Replays extracted paths under sampled process variation."""

    def __init__(
        self,
        specs: Sequence[CellSpec],
        tech: Optional[TechnologyParams] = None,
        pelgrom: Optional[PelgromModel] = None,
        global_sigmas: Optional[GlobalSigmas] = None,
    ):
        self._specs: Dict[str, CellSpec] = {spec.name: spec for spec in specs}
        self.base_tech = tech or TechnologyParams()
        self.pelgrom = pelgrom or PelgromModel()
        self.global_sigmas = global_sigmas or GlobalSigmas()

    def _spec(self, cell_name: str) -> CellSpec:
        try:
            return self._specs[cell_name]
        except KeyError:
            raise ReproError(f"no catalog spec for cell {cell_name}") from None

    def sample_path(
        self,
        path: TimingPath,
        n_samples: int = 200,
        seed: int = 0,
        corner: Optional[Corner] = None,
        include_local: bool = True,
        include_global: bool = False,
    ) -> PathMcResult:
        """Monte-Carlo the path's total delay.

        Local mismatch draws are independent per step and per network;
        global variation is one shared (dvth, dbeta, dlength) triple
        per sample, applied to every step.
        """
        corner = corner or typical_corner()
        tech = corner.apply(self.base_tech)
        model = GateDelayModel(tech)
        rng = np.random.default_rng(seed)

        if include_global:
            g_vth = rng.normal(0.0, self.global_sigmas.vth, n_samples)
            g_beta = rng.normal(0.0, self.global_sigmas.beta_rel, n_samples)
            g_len = rng.normal(0.0, self.global_sigmas.length_rel, n_samples)
        else:
            g_vth = g_beta = g_len = np.zeros(n_samples)

        total = np.zeros(n_samples)
        for step in path.steps:
            spec = self._spec(step.cell_name)
            drive = spec.drive(step.out_pin)
            sample_delay = None
            for rise in (True, False):
                geometry = network_geometry(tech, spec, drive, rise=rise)
                if include_local:
                    sigma_vth = self.pelgrom.sigma_vth_stack(
                        geometry.width, geometry.length, geometry.stack
                    )
                    sigma_beta = self.pelgrom.sigma_beta_rel_stack(
                        geometry.width, geometry.length, geometry.stack
                    )
                    dvth = rng.normal(0.0, sigma_vth, n_samples)
                    dbeta = rng.normal(0.0, sigma_beta, n_samples)
                else:
                    dvth = np.zeros(n_samples)
                    dbeta = np.zeros(n_samples)
                tables = model.arc_tables(
                    spec,
                    step.out_pin,
                    rise=rise,
                    slews=np.asarray(step.slew),
                    loads=np.asarray(step.load),
                    dvth=dvth + g_vth,
                    dbeta=dbeta + g_beta,
                    dlength_rel=g_len,
                )
                delay = np.asarray(tables.delay)
                sample_delay = (
                    delay if sample_delay is None else np.maximum(sample_delay, delay)
                )
            total = total + sample_delay
        return PathMcResult(corner=corner.name, delays=total)


def pick_paths_by_depth(
    paths: Sequence[TimingPath], targets: Sequence[int] = (3, 18, 57)
) -> List[TimingPath]:
    """The paper's short/medium/long selection: paths whose depths are
    closest to the requested targets, preferring distinct paths."""
    if not paths:
        raise ReproError("no paths to choose from")
    remaining = list(paths)
    chosen: List[TimingPath] = []
    for target in targets:
        best = min(remaining, key=lambda p: abs(p.depth - target))
        chosen.append(best)
        if len(remaining) > 1:
            remaining.remove(best)
    return chosen
