"""The unit of lint output: one :class:`Finding` per contract violation.

A finding ties a rule id to a location (repo-relative path, 1-based
line and column) plus a human message and a fix hint.  Findings are
value objects: they sort deterministically (path, line, column, rule),
render to both the console and JSON formats, and carry a *baseline
key* — ``(rule, path, message)``, deliberately line-free so committed
debt does not churn when unrelated edits shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Ranked severities (only used for display; any finding fails the run).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    hint: str = ""
    severity: str = "error"

    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity used for baseline matching.

        Line numbers are excluded on purpose: committed debt must keep
        matching after unrelated edits move it around a file.
        """
        return (self.rule_id, self.path, self.message)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable rendering (the ``--format json`` shape)."""
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        return payload

    def to_text(self) -> str:
        """One console line: ``path:line:col: RULE message (hint)``."""
        text = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text
