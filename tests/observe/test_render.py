"""Console rendering: the time tree, shares and counter tables."""

from __future__ import annotations

from repro.observe import MemorySink, Trace, Tracer, render_counters, render_trace, render_tree


def _span(name, span_id, parent, wall, start=0.0):
    """A minimal span record for rendering tests."""
    return {
        "type": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "wall": wall,
        "cpu": wall,
        "start": start,
    }


class TestRenderTree:
    """Grouping, ordering and percentage arithmetic of the tree."""

    def test_empty_trace(self):
        """No spans renders a clear placeholder line."""
        assert "no spans" in render_tree([])

    def test_groups_siblings_by_name_with_counts(self):
        """Same-name siblings fold to one ``xN`` line; shares are of
        the parent's wall time."""
        spans = [
            _span("root", "r", None, 10.0),
            _span("work", "w1", "r", 4.0, start=1),
            _span("work", "w2", "r", 4.0, start=2),
        ]
        text = render_tree(spans)
        assert "x2" in text
        assert "80.0%" in text  # 8s of work under a 10s root
        assert "(self)" in text  # the remaining 2s
        assert "20.0%" in text

    def test_orphan_spans_render_as_roots(self):
        """A span whose parent isn't in the file (cross-process tail)
        still renders, as a root."""
        spans = [_span("lonely", "x", "missing-parent", 1.0)]
        text = render_tree(spans)
        assert "lonely" in text
        assert "1 spans" in text

    def test_deep_nesting_indents(self):
        """Child groups indent under their parents."""
        spans = [
            _span("a", "1", None, 4.0),
            _span("b", "2", "1", 3.0),
            _span("c", "3", "2", 2.0),
        ]
        lines = render_tree(spans).splitlines()
        a_line = next(l for l in lines if l.lstrip().startswith("a"))
        c_line = next(l for l in lines if l.lstrip().startswith("c"))
        assert len(c_line) - len(c_line.lstrip()) > len(a_line) - len(
            a_line.lstrip()
        )


class TestRenderCounters:
    """The counter/gauge table."""

    def test_counters_and_gauges_listed(self):
        """Counter totals and gauges render sorted by name."""
        text = render_counters({"b.count": 2, "a.count": 1}, {"workers": 4})
        assert text.index("a.count") < text.index("b.count")
        assert "workers" in text

    def test_empty(self):
        """Nothing recorded renders a placeholder."""
        assert "none recorded" in render_counters({})


class TestRenderTrace:
    """End to end: a live tracer's output renders as tree + counters."""

    def test_full_report(self):
        """A real traced region produces both sections."""
        tracer = Tracer(MemorySink())
        with tracer.span("run"):
            with tracer.span("step"):
                pass
            tracer.add("items", 3)
        trace = Trace(
            spans=[s.to_record() for s in tracer.spans],
            counters=tracer.counters(),
        )
        text = render_trace(trace)
        assert "run" in text and "step" in text
        assert "items" in text
