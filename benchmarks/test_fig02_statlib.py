"""Bench: Fig. 2 — statistical-library construction."""

from conftest import show

from repro.experiments import fig02_statlib


def test_fig02_statlib(benchmark, context):
    result = benchmark.pedantic(
        fig02_statlib.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    for row in result.rows:
        # the library entry must be exactly the per-entry statistics
        assert abs(row["entry_mean"] - row["lib_mean[0,0]"]) < 1e-12
        assert abs(row["entry_sigma"] - row["lib_sigma[0,0]"]) < 1e-12
    assert "~0" in result.notes
