"""Statistical library construction (paper Sec. III-IV).

Combines N Monte-Carlo sample libraries into one *statistical* library
whose LUT entries hold the per-entry mean and standard deviation of the
corresponding entries across the samples (paper Fig. 2), and provides
the dispersion metrics the paper discusses in Sec. III (standard
deviation vs coefficient of variation).
"""

from repro.statlib.stats import (
    RunningStats,
    coefficient_of_variation,
    mean_sigma,
)
from repro.statlib.builder import build_statistical_library, check_library_compatible

__all__ = [
    "RunningStats",
    "coefficient_of_variation",
    "mean_sigma",
    "build_statistical_library",
    "check_library_compatible",
]
