"""Structural Verilog round-trips."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.generators.arithmetic import build_ripple_adder
from repro.netlist.simulate import int_to_bus_inputs, simulate
from repro.netlist.verilog import parse_verilog, write_verilog


def assert_equivalent(a, b):
    assert a.name == b.name
    assert a.ports == b.ports
    assert set(a.instances) == set(b.instances)
    for name, instance in a.instances.items():
        other = b.instance(name)
        assert instance.family == other.family
        assert instance.cell == other.cell
        assert instance.connections == other.connections
    assert {p: a.port_net(p) for p in a.output_ports()} == {
        p: b.port_net(p) for p in b.output_ports()
    }


class TestRoundtrip:
    def test_adder_roundtrip(self):
        netlist = build_ripple_adder(6)
        parsed = parse_verilog(write_verilog(netlist))
        parsed.validate()
        assert_equivalent(netlist, parsed)

    def test_behaviour_preserved(self):
        netlist = build_ripple_adder(5)
        parsed = parse_verilog(write_verilog(netlist))
        for a, b in ((3, 7), (19, 12), (31, 31)):
            inputs = {**int_to_bus_inputs("a", 5, a), **int_to_bus_inputs("b", 5, b),
                      "tie0": False}
            assert simulate(netlist, inputs) == simulate(parsed, inputs)

    def test_mapped_cells_roundtrip(self):
        netlist = build_ripple_adder(4)
        for instance in netlist:
            instance.cell = f"{instance.family}_2"
        parsed = parse_verilog(write_verilog(netlist))
        assert all(i.cell == f"{i.family}_2" for i in parsed)

    def test_sequential_roundtrip(self):
        builder = NetlistBuilder("seq")
        builder.clock()
        rst = builder.input("rst_n")
        q = builder.dff(builder.input("d"), reset_n=rst)
        builder.output("q", q)
        netlist = builder.netlist
        parsed = parse_verilog(write_verilog(netlist))
        parsed.validate()
        assert parsed.clock == "clk"
        assert len(parsed.sequential_instances()) == 1

    def test_hierarchical_names_escaped(self):
        builder = NetlistBuilder("esc")
        a = builder.input("a")
        with builder.scope("u0/core"):
            out = builder.inv(a)
        builder.output("y", out)
        text = write_verilog(builder.netlist)
        assert "\\u0/core/inv0 " in text
        parsed = parse_verilog(text)
        assert any("u0/core" in name for name in parsed.instances)


class TestWriterFormat:
    def test_buses_declared_with_ranges(self):
        text = write_verilog(build_ripple_adder(4))
        assert "input [3:0] a;" in text
        assert "output [3:0] s;" in text
        assert "output co;" in text

    def test_output_assigns_present(self):
        text = write_verilog(build_ripple_adder(4))
        assert "assign" in text

    def test_module_header(self):
        text = write_verilog(build_ripple_adder(4))
        assert text.startswith("module ripple_adder4 (")
        assert text.rstrip().endswith("endmodule")


class TestReaderErrors:
    def test_garbage_rejected(self):
        with pytest.raises(NetlistError):
            parse_verilog("module m (a); input a; INV_1 u0 (garbage); endmodule")

    def test_truncated_rejected(self):
        with pytest.raises(NetlistError):
            parse_verilog("module m (")
