"""Parser for the Liberty subset used by this package.

The grammar covered is the classic Liberty group/attribute structure::

    group_name (arg1, arg2) {
        simple_attribute : value;
        complex_attribute ("v1, v2", "v3, v4");
        nested_group (...) { ... }
    }

which is enough to round-trip everything :mod:`repro.liberty.writer`
emits: ``library``, ``operating_conditions``, ``lu_table_template``,
``cell``, ``pin``, ``timing``, ``ff``/``latch`` markers and the NLDM
value tables (including the non-standard ``sigma_rise``/``sigma_fall``
tables that statistical libraries carry, see paper Sec. IV).

The parser is two-stage: a tokenizer and a recursive-descent group
parser building a generic AST (:class:`GroupNode`), followed by a
mapping stage onto :mod:`repro.liberty.model` classes.  Keeping the AST
generic means unknown attributes are preserved-by-ignoring rather than
crashing, mirroring how production tools treat vendor extensions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LibertyParseError
from repro.liberty.model import (
    Cell,
    Library,
    Lut,
    LutTemplate,
    OperatingConditions,
    Pin,
    PinDirection,
    TimingArc,
    TimingSense,
)

Scalar = Union[str, float, bool]


@dataclass
class GroupNode:
    """Generic Liberty group: name, arguments, attributes, children."""

    name: str
    args: List[str] = field(default_factory=list)
    attributes: Dict[str, Scalar] = field(default_factory=dict)
    complex_attributes: Dict[str, List[str]] = field(default_factory=dict)
    children: List["GroupNode"] = field(default_factory=list)

    def child(self, name: str) -> Optional["GroupNode"]:
        """First child group called ``name``, or None."""
        for node in self.children:
            if node.name == name:
                return node
        return None

    def children_named(self, name: str) -> List["GroupNode"]:
        """All child groups called ``name``."""
        return [node for node in self.children if node.name == name]


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>/\*.*?\*/)            # block comment
  | (?P<string>"(?:[^"\\]|\\.)*")     # double-quoted string
  | (?P<punct>[{}();:,])              # structural punctuation
  | (?P<word>[^\s{}();:,"]+)          # identifiers, numbers, units
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int


def tokenize(text: str) -> List[_Token]:
    """Tokenize Liberty text, dropping comments and ``\\`` line joins."""
    tokens: List[_Token] = []
    pos = 0
    line = 1
    text = text.replace("\\\n", " ")
    while pos < len(text):
        ch = text[pos]
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "\n":
            line += 1
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LibertyParseError(f"unexpected character {ch!r}", line)
        kind = str(match.lastgroup)
        token_text = match.group()
        if kind != "comment":
            tokens.append(_Token(kind, token_text, line))
        line += token_text.count("\n")
        pos = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Recursive-descent group parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise LibertyParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise LibertyParseError(f"expected {text!r}, got {token.text!r}", token.line)
        return token

    def parse_group(self) -> GroupNode:
        """Parse ``name (args) { body }``."""
        name_token = self._next()
        if name_token.kind != "word":
            raise LibertyParseError(
                f"expected group name, got {name_token.text!r}", name_token.line
            )
        node = GroupNode(name=name_token.text)
        self._expect("(")
        node.args = self._parse_arg_list()
        self._expect("{")
        self._parse_body(node)
        return node

    def _parse_arg_list(self) -> List[str]:
        args: List[str] = []
        while True:
            token = self._next()
            if token.text == ")":
                return args
            if token.text == ",":
                continue
            args.append(_unquote(token.text))

    def _parse_body(self, node: GroupNode) -> None:
        while True:
            token = self._peek()
            if token is None:
                raise LibertyParseError(f"unterminated group {node.name}")
            if token.text == "}":
                self._next()
                # optional trailing ';' after a closing brace
                nxt = self._peek()
                if nxt is not None and nxt.text == ";":
                    self._next()
                return
            self._parse_statement(node)

    def _parse_statement(self, node: GroupNode) -> None:
        name_token = self._next()
        if name_token.kind != "word":
            raise LibertyParseError(
                f"expected statement, got {name_token.text!r}", name_token.line
            )
        sep = self._next()
        if sep.text == ":":
            value_parts: List[str] = []
            while True:
                token = self._next()
                if token.text == ";":
                    break
                value_parts.append(_unquote(token.text))
            node.attributes[name_token.text] = _coerce(" ".join(value_parts))
            return
        if sep.text == "(":
            args = self._parse_arg_list()
            after = self._peek()
            if after is not None and after.text == "{":
                self._next()
                child = GroupNode(name=name_token.text, args=args)
                self._parse_body(child)
                node.children.append(child)
                return
            # complex attribute: values (...);
            if after is not None and after.text == ";":
                self._next()
            node.complex_attributes.setdefault(name_token.text, []).extend(args)
            return
        raise LibertyParseError(
            f"expected ':' or '(' after {name_token.text!r}, got {sep.text!r}", sep.line
        )


def _unquote(text: str) -> str:
    if len(text) >= 2 and text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    return text


def _coerce(text: str) -> Scalar:
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return float(text)
    except ValueError:
        return text


# ---------------------------------------------------------------------------
# AST -> model mapping
# ---------------------------------------------------------------------------

_TABLE_SLOTS = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
    "sigma_rise",
    "sigma_fall",
    "power_rise",
    "power_fall",
    "sigma_power_rise",
    "sigma_power_fall",
)


def _parse_index(values: List[str]) -> Tuple[float, ...]:
    numbers: List[float] = []
    for chunk in values:
        numbers.extend(float(v) for v in chunk.replace(",", " ").split())
    return tuple(numbers)


def _node_to_lut(node: GroupNode, templates: Dict[str, LutTemplate]) -> Lut:
    template_name = node.args[0] if node.args else ""
    index_1 = _parse_index(node.complex_attributes.get("index_1", []))
    index_2 = _parse_index(node.complex_attributes.get("index_2", []))
    if not index_1 or not index_2:
        template = templates.get(template_name)
        if template is None:
            raise LibertyParseError(
                f"table {node.name} has no indices and unknown template {template_name!r}"
            )
        index_1 = index_1 or template.index_1
        index_2 = index_2 or template.index_2
    rows = node.complex_attributes.get("values", [])
    matrix = [[float(v) for v in row.replace(",", " ").split()] for row in rows]
    return Lut(index_1, index_2, matrix, template=template_name)


def _node_to_arc(node: GroupNode, templates: Dict[str, LutTemplate]) -> TimingArc:
    sense_text = str(node.attributes.get("timing_sense", "negative_unate"))
    arc = TimingArc(
        related_pin=str(node.attributes.get("related_pin", "")),
        timing_sense=TimingSense(sense_text),
    )
    for child in node.children:
        if child.name in _TABLE_SLOTS:
            setattr(arc, child.name, _node_to_lut(child, templates))
    return arc


def _node_to_pin(node: GroupNode, templates: Dict[str, LutTemplate]) -> Pin:
    direction = PinDirection(str(node.attributes.get("direction", "input")))
    pin = Pin(
        name=node.args[0],
        direction=direction,
        capacitance=float(node.attributes.get("capacitance", 0.0) or 0.0),
        function=str(node.attributes.get("function", "") or ""),
        max_capacitance=float(node.attributes.get("max_capacitance", 0.0) or 0.0),
        is_clock=bool(node.attributes.get("clock", False)),
    )
    for child in node.children_named("timing"):
        pin.timing.append(_node_to_arc(child, templates))
    return pin


def _node_to_cell(node: GroupNode, templates: Dict[str, LutTemplate]) -> Cell:
    cell = Cell(name=node.args[0], area=float(node.attributes.get("area", 0.0) or 0.0))
    ff_node = node.child("ff")
    latch_node = node.child("latch")
    seq = ff_node if ff_node is not None else latch_node
    if seq is not None:
        cell.is_sequential = True
        cell.is_latch = latch_node is not None
        cell.clock_pin = str(seq.attributes.get("clocked_on", "") or "").strip()
        cell.setup_time = float(seq.attributes.get("setup_time", 0.0) or 0.0)
    for child in node.children_named("pin"):
        cell.add_pin(_node_to_pin(child, templates))
    if cell.clock_pin and cell.clock_pin in cell.pins:
        cell.pins[cell.clock_pin].is_clock = True
    return cell


def parse_liberty(text: str) -> Library:
    """Parse Liberty text into a :class:`~repro.liberty.model.Library`."""
    tokens = tokenize(text)
    if not tokens:
        raise LibertyParseError("empty liberty source")
    root = _Parser(tokens).parse_group()
    if root.name != "library":
        raise LibertyParseError(f"top-level group is {root.name!r}, expected 'library'")

    library = Library(name=root.args[0] if root.args else "unnamed")
    library.is_statistical = bool(root.attributes.get("statistical", False))
    library.time_unit = str(root.attributes.get("time_unit", "1ns")).replace("1", "") or "ns"

    oc_node = root.child("operating_conditions")
    if oc_node is not None:
        library.operating_conditions = OperatingConditions(
            name=oc_node.args[0] if oc_node.args else "TT",
            process=float(oc_node.attributes.get("process", 1.0) or 1.0),
            voltage=float(oc_node.attributes.get("voltage", 1.1) or 1.1),
            temperature=float(oc_node.attributes.get("temperature", 25.0) or 25.0),
        )

    for tmpl_node in root.children_named("lu_table_template"):
        library.add_template(
            LutTemplate(
                name=tmpl_node.args[0],
                variable_1=str(tmpl_node.attributes.get("variable_1", "input_net_transition")),
                variable_2=str(
                    tmpl_node.attributes.get("variable_2", "total_output_net_capacitance")
                ),
                index_1=_parse_index(tmpl_node.complex_attributes.get("index_1", [])),
                index_2=_parse_index(tmpl_node.complex_attributes.get("index_2", [])),
            )
        )

    for cell_node in root.children_named("cell"):
        library.add_cell(_node_to_cell(cell_node, library.templates))
    return library


def parse_liberty_file(path: str) -> Library:
    """Parse the Liberty file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_liberty(handle.read())
