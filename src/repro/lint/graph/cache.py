"""Content-hash cache for the whole-program graph.

Building the graph parses every file under ``src/repro`` — ~0.7 s
today and growing with the tree.  A lint run that changed nothing
should not pay that: the cache keys a JSON-serialized
:class:`~repro.lint.graph.model.ProgramGraph` on a digest of the
source tree (sorted relative paths + per-file content hashes + the
model schema version), so a warm run hashes the files, loads one JSON
document, and parses nothing.

The cache lives under the same root the artifact store uses
(``$REPRO_CACHE_DIR``, else ``~/.cache/repro``) but the resolution is
duplicated here rather than imported from :mod:`repro.parallel.cache`
— the lint layer sits *below* ``repro.parallel`` in the declared
layering and must not import upward to save four lines.

Writes publish atomically (temp file + ``os.replace``) so two
concurrent lint runs never expose a torn cache entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.lint.engine import iter_python_files
from repro.lint.graph.builder import build_graph
from repro.lint.graph.model import GRAPH_SCHEMA_VERSION, ProgramGraph


@dataclass
class GraphBuildReport:
    """How a graph was obtained — callers print/assert on this."""

    digest: str
    from_cache: bool
    #: Files parsed this run (0 on a cache hit — warm runs re-parse
    #: nothing; the warm-speed test pins this).
    parsed_files: int


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR/lintgraph`` or ``~/.cache/repro/lintgraph``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env).expanduser() if env else Path.home() / ".cache" / "repro"
    return base / "lintgraph"


def source_tree_hash(
    paths: Sequence[Path], root: Optional[Path] = None
) -> str:
    """Digest of every python file under ``paths`` (path + content)."""
    digest = hashlib.sha256()
    digest.update(f"graph-schema:{GRAPH_SCHEMA_VERSION}\n".encode("utf-8"))
    for file_path in iter_python_files(paths):
        display = file_path
        if root is not None:
            try:
                display = file_path.relative_to(root)
            except ValueError:
                display = file_path
        digest.update(display.as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(file_path.read_bytes()).digest())
    return digest.hexdigest()


def load_cached_graph(
    digest: str, cache_dir: Optional[Path] = None
) -> Optional[ProgramGraph]:
    """The cached graph for a tree digest, or ``None``."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    cache_path = directory / f"{digest}.json"
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != GRAPH_SCHEMA_VERSION:
        return None  # model changed; rebuild rather than misread
    try:
        return ProgramGraph.from_payload(payload)
    except (KeyError, TypeError, ValueError):
        return None


def store_graph(
    digest: str, graph: ProgramGraph, cache_dir: Optional[Path] = None
) -> None:
    """Publish a graph under its tree digest (atomic, best effort)."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    cache_path = directory / f"{digest}.json"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        temp_path = directory / f".{digest}.{os.getpid()}.tmp"
        temp_path.write_text(
            json.dumps(
                graph.to_payload(), sort_keys=True, separators=(",", ":")
            ),
            encoding="utf-8",
        )
        os.replace(temp_path, cache_path)
    except OSError:  # pragma: no cover - read-only cache dir etc.
        pass


def build_graph_cached(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
) -> Tuple[ProgramGraph, GraphBuildReport]:
    """The graph for a tree: cached when the content hash matches."""
    digest = source_tree_hash(paths, root=root)
    cached = load_cached_graph(digest, cache_dir=cache_dir)
    if cached is not None:
        return cached, GraphBuildReport(
            digest=digest, from_cache=True, parsed_files=0
        )
    graph = build_graph(paths, root=root)
    store_graph(digest, graph, cache_dir=cache_dir)
    return graph, GraphBuildReport(
        digest=digest,
        from_cache=False,
        parsed_files=len(graph.modules) + len(graph.syntax_errors),
    )
