"""The design-family sweep harness with incremental recharacterization.

The paper evaluates its tuning methods on one design; this package
sweeps them across the whole design family (:mod:`repro.netlist.
generators.family`) without redoing work the artifact store already
holds.  :func:`~repro.sweep.driver.run_sweep` expands a
``design x method x parameter x clock`` grid, diffs every point's
chained content fingerprints against the store, schedules **only the
stale points** onto the configured execution backend
(:mod:`repro.parallel.backends`), and collects every comparison — warm
and fresh alike — through the store.  A warm re-run of the same grid
schedules nothing and performs zero synthesis or characterization
calls (CI asserts this).

``python -m repro sweep`` is the CLI face: ``--designs/--methods/
--parameters/--clocks`` shape the grid, ``--report`` writes the
markdown grid report (:mod:`repro.sweep.report`), and
``--expect-warm`` turns the zero-recharacterization property into an
exit code.
"""

from repro.sweep.driver import (
    GridPoint,
    PointResult,
    SweepGrid,
    SweepResult,
    run_sweep,
)
from repro.sweep.report import render_sweep_report

__all__ = [
    "GridPoint",
    "PointResult",
    "SweepGrid",
    "SweepResult",
    "render_sweep_report",
    "run_sweep",
]
