"""Bench: the tuning service under load — coalescing and warm latency.

Three bursts against a live :class:`~repro.serve.server.TuningServer`
on the tiny flow, with the process-wide synthesis counter asserting
what each one actually cost:

- **cold**: N identical never-seen requests coalesce to exactly one
  sweep-worker evaluation (one baseline + one tuned synthesis pass);
- **warm**: a large identical burst streams from the artifact store
  with zero synthesis;
- **mixed**: warm traffic interleaved with a fresh cold point — the
  cold group coalesces to one evaluation while the warm majority stays
  store-only.

A final leg replays the warm burst with metrics collection toggled
off and on, asserting live telemetry costs the warm hot path less
than 5% throughput (``metrics_overhead_pct`` in the bench JSON).

Latency percentiles (p50/p95/p99) and throughput for every phase land
in ``BENCH_<runid>.json`` via the shared :func:`conftest.show` hook.
"""

from __future__ import annotations

import asyncio

from conftest import show

from repro.experiments.base import ExperimentResult
from repro.flow.experiment import FlowConfig
from repro.serve.handlers import TuningService
from repro.serve.loadgen import LoadReport, run_burst, tune_burst
from repro.serve.server import TuningServer
from repro.synth.synthesizer import (
    reset_synthesis_call_count,
    synthesis_call_count,
)

PERIOD = 2.0
METHOD = "sigma_ceiling"
COLD_PARAMETER = 0.03
MIXED_PARAMETER = 0.05
COLD_N = 32
WARM_N = 1000
MIXED_WARM_N = 150
MIXED_COLD_N = 50
CONCURRENCY = 100


def _burst(service: TuningService, requests, concurrency: int) -> LoadReport:
    """Run one burst against a fresh server around ``service``."""

    async def scenario() -> LoadReport:
        async with TuningServer(service=service, ledger=False) as server:
            return await run_burst(
                requests, port=server.port, concurrency=concurrency
            )

    return asyncio.run(scenario())


def _interleave(warm, cold):
    """Deterministically mix warm and cold requests (no RNG in benches)."""
    mixed = list(warm)
    stride = max(1, len(warm) // max(1, len(cold)))
    for index, request in enumerate(cold):
        mixed.insert(index * (stride + 1), request)
    return tuple(mixed)


def test_serve_coalescing_and_warm_latency(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    config = FlowConfig.from_env(scale="tiny", backend="serial", jobs=1)
    service = TuningService(config=config, max_pending=8)

    # cold: N identical requests -> exactly one synthesis pass
    reset_synthesis_call_count()
    cold = _burst(
        service,
        tune_burst(COLD_N, METHOD, COLD_PARAMETER, PERIOD),
        CONCURRENCY,
    )
    cold_synth = synthesis_call_count()
    print(f"\ncold  {cold.summary()}")
    assert cold.statuses == {200: COLD_N}
    assert cold.outcomes["computed"] == 1
    assert cold.outcomes["coalesced"] == COLD_N - 1
    assert cold_synth == 2  # one baseline + one tuned run, total

    # warm: a large identical burst is store-only (zero synthesis),
    # timed as the bench leg
    reset_synthesis_call_count()
    warm = benchmark.pedantic(
        _burst,
        args=(
            service,
            tune_burst(WARM_N, METHOD, COLD_PARAMETER, PERIOD),
            CONCURRENCY,
        ),
        rounds=1,
        iterations=1,
    )
    print(f"warm  {warm.summary()}")
    assert synthesis_call_count() == 0
    assert warm.statuses == {200: WARM_N}
    assert warm.outcomes == {"warm": WARM_N}

    # mixed: warm majority + one fresh cold group, interleaved
    reset_synthesis_call_count()
    mixed = _burst(
        service,
        _interleave(
            tune_burst(MIXED_WARM_N, METHOD, COLD_PARAMETER, PERIOD),
            tune_burst(MIXED_COLD_N, METHOD, MIXED_PARAMETER, PERIOD),
        ),
        CONCURRENCY,
    )
    print(f"mixed {mixed.summary()}")
    assert mixed.statuses == {200: MIXED_WARM_N + MIXED_COLD_N}
    assert mixed.outcomes["warm"] == MIXED_WARM_N
    assert mixed.outcomes["computed"] == 1
    assert mixed.outcomes["coalesced"] == MIXED_COLD_N - 1
    # the fresh point shares its baseline (same clock period) with the
    # first burst's stored artifact — only its tuned netlist synthesizes
    assert synthesis_call_count() == 1

    for report in (cold, warm, mixed):
        assert report.p50 <= report.p95 <= report.p99

    # metrics overhead: the same warm burst with collection toggled —
    # live telemetry must cost the hot path less than 5% throughput.
    # Best-of-two on the enabled side smooths scheduler noise; the
    # guard is a regression tripwire, not a microbenchmark.
    from repro.observe.metrics import set_metrics_enabled

    warm_requests = tune_burst(WARM_N, METHOD, COLD_PARAMETER, PERIOD)
    previous = set_metrics_enabled(False)
    try:
        off = _burst(service, warm_requests, CONCURRENCY)
    finally:
        set_metrics_enabled(previous)
    on_reports = [
        _burst(service, warm_requests, CONCURRENCY) for _ in range(2)
    ]
    rps_on = max(report.throughput_rps for report in on_reports)
    overhead_pct = 100.0 * (1.0 - rps_on / off.throughput_rps)
    print(
        f"metrics overhead: off={off.throughput_rps:.0f} rps "
        f"on={rps_on:.0f} rps ({overhead_pct:+.1f}%)"
    )
    assert rps_on >= 0.95 * off.throughput_rps

    benchmark.extra_info["cold_p99_ms"] = round(cold.p99, 1)
    benchmark.extra_info["warm_p99_ms"] = round(warm.p99, 1)
    benchmark.extra_info["coalesced_cold"] = cold.outcomes["coalesced"]
    benchmark.extra_info["warm_rps"] = round(warm.throughput_rps, 1)
    benchmark.extra_info["metrics_overhead_pct"] = round(overhead_pct, 2)

    show(
        ExperimentResult(
            "serve_load",
            "Tuning service under load: coalescing cold, store-only warm",
            rows=[
                cold.to_row("cold"),
                warm.to_row("warm"),
                mixed.to_row("mixed"),
            ],
            notes=(
                "cold burst of identical requests coalesces to one "
                "sweep-worker evaluation (2 synthesis runs); warm bursts "
                "perform zero synthesis"
            ),
        )
    )
