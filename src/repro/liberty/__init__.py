"""Liberty (.lib) substrate: data model, LUT math, parser and writer.

This subpackage models the subset of the Liberty standard the paper's
flow relies on: non-linear delay model (NLDM) look-up tables indexed by
input transition and output load, grouped per timing arc, per pin, per
cell.  The same model holds nominal libraries (delay values), the
Monte-Carlo sample libraries, and the *statistical* library (mean and
sigma values) of paper Sec. IV.
"""

from repro.liberty.model import (
    Library,
    Cell,
    Pin,
    PinDirection,
    TimingArc,
    TimingSense,
    LutTemplate,
    Lut,
    OperatingConditions,
)
from repro.liberty.lut import bilinear_interpolate, bilinear_interpolate_many
from repro.liberty.parser import parse_liberty, parse_liberty_file
from repro.liberty.writer import write_liberty, write_liberty_file

__all__ = [
    "Library",
    "Cell",
    "Pin",
    "PinDirection",
    "TimingArc",
    "TimingSense",
    "LutTemplate",
    "Lut",
    "OperatingConditions",
    "bilinear_interpolate",
    "bilinear_interpolate_many",
    "parse_liberty",
    "parse_liberty_file",
    "write_liberty",
    "write_liberty_file",
]
