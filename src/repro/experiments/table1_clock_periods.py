"""Table 1 — clock periods for the different constraints.

The paper's absolute numbers (2.41 / 2.5 / 4 / 10 ns) belong to its
NXP 40 nm library and testbed; we search our own minimum achievable
period and derive the other operating points with the paper's ratios.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult

#: The paper's Table 1, for side-by-side reporting.
PAPER_PERIODS = {
    "high": 2.41,
    "check": 2.50,
    "medium": 4.00,
    "low": 10.00,
}

_LABELS = {
    "high": "High performance (minimum achievable)",
    "check": "Close to maximum check",
    "medium": "Medium performance",
    "low": "Low performance",
}


def run(context: ExperimentContext) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    periods = context.standard_periods()
    minimum = context.minimum_period()
    rows = []
    for key in ("high", "check", "medium", "low"):
        run_at = context.flow.baseline(periods[key])
        rows.append({
            "constraint": _LABELS[key],
            "paper_ns": PAPER_PERIODS[key],
            "ours_ns": periods[key],
            "ratio_vs_min": periods[key] / periods["high"],
            "met": run_at.met,
            "area_um2": round(run_at.area, 0),
        })
    below = context.flow.baseline(round(minimum - 0.1, 2))
    return ExperimentResult(
        experiment_id="table1",
        title="Clock periods for different constraints",
        rows=rows,
        notes=(
            f"minimum found by failing-slack search: {minimum:g} ns; "
            f"synthesis at {round(minimum - 0.1, 2):g} ns met={below.met} "
            "(must be False: below the minimum the flow cannot close timing)"
        ),
    )
