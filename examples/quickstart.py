"""Quickstart: characterize, build statistics, tune, restrict.

Runs the paper's pipeline on a small slice of the catalog in a few
seconds and prints every intermediate artifact:

1. nominal + Monte-Carlo characterization of a few cells;
2. the statistical library (per-entry mean/sigma, paper Fig. 2);
3. threshold extraction with the sigma-ceiling method;
4. the per-pin slew/load windows synthesis would have to honor;
5. a Liberty (.lib) dump of the statistical library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.cells import build_catalog
from repro.characterization import Characterizer
from repro.core import LibraryTuner
from repro.liberty import write_liberty

FAMILIES = ["INV", "ND2", "NR2", "XNR2", "ADDF", "DFF"]


def main() -> None:
    specs = build_catalog(families=FAMILIES)
    print(f"catalog slice: {len(specs)} cells from families {FAMILIES}")

    characterizer = Characterizer()
    statistical = characterizer.statistical_library(specs, n_samples=50, seed=0)
    print(f"statistical library: {statistical.name} ({len(statistical)} cells)")

    inv1 = statistical.cell("INV_1").pin("Z").arc_from("A")
    print("\nINV_1 delay sigma LUT (rows = input slew, cols = output load):")
    print(np.array_str(inv1.sigma_fall.values, precision=4, suppress_small=True))

    tuner = LibraryTuner(statistical)
    result = tuner.tune("sigma_ceiling", 0.02)
    print(f"\ntuning: {result.summary()}")

    print("\nwindows for a weak and a strong inverter (sigma ceiling 0.02 ns):")
    for cell in ("INV_1", "INV_8"):
        window = result.window(cell, "Z")
        if window is None:
            print(f"  {cell}: excluded (sigma above the ceiling everywhere)")
        else:
            print(
                f"  {cell}: slew <= {window.max_slew:.3f} ns, "
                f"load <= {window.max_load:.4f} pF"
            )

    text = write_liberty(statistical)
    path = "statistical_quickstart.lib"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"\nwrote {path} ({len(text.splitlines())} lines of Liberty)")


if __name__ == "__main__":
    main()
