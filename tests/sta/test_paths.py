"""Worst-path extraction and depth accounting."""

import pytest

from repro.sta.engine import analyze
from repro.sta.graph import TimingGraph
from repro.sta.paths import depth_histogram, extract_worst_paths, worst_path


class TestChainPath:
    def test_path_follows_the_chain(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        # worst endpoint is the capture FF behind DFF->INV->INV->ND2
        paths = extract_worst_paths(result)
        ff_paths = [p for p in paths if p.endpoint.kind == "ff_data"]
        deepest = max(ff_paths, key=lambda p: p.depth)
        families = [
            chain_netlist.instance(s.instance).family for s in deepest.steps
        ]
        assert families == ["DFF", "INV", "INV", "ND2"]

    def test_launch_step_marked(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        path = worst_path(result)
        assert path.steps[0].is_launch
        assert not any(step.is_launch for step in path.steps[1:])

    def test_depth_counts_cells(self, chain_netlist, statistical_library):
        graph = TimingGraph(chain_netlist, statistical_library)
        result = analyze(graph, clock_period=2.0)
        paths = extract_worst_paths(result)
        deepest = max(p.depth for p in paths)
        assert deepest == 4  # launch FF + INV + INV + ND2

    def test_path_arrival_matches_engine(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        for path in extract_worst_paths(result):
            assert path.arrival == pytest.approx(
                result.arrival[path.endpoint.net_id]
            )
            assert path.arrival == pytest.approx(
                sum(s.delay for s in path.steps), rel=1e-9
            )

    def test_slack_matches_engine(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        slacks = sorted(p.slack for p in paths)
        assert slacks[0] == pytest.approx(result.wns)


class TestPerEndpoint:
    def test_one_path_per_endpoint(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        assert len(paths) == len(graph.endpoints)

    def test_carry_chain_produces_increasing_depths(
        self, adder_netlist, statistical_library
    ):
        """Bit k's capture FF sees a path ~k full adders deep."""
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        depths = sorted(p.depth for p in paths)
        assert depths[-1] >= 9  # launch + 8 adders at least
        assert depths[0] <= 2

    def test_depth_histogram(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        paths = extract_worst_paths(result)
        histogram = depth_histogram(paths)
        assert sum(histogram.values()) == len(paths)
        assert list(histogram) == sorted(histogram)

    def test_steps_chain_connects(self, adder_netlist, statistical_library):
        graph = TimingGraph(adder_netlist, statistical_library)
        result = analyze(graph, clock_period=3.0)
        for path in extract_worst_paths(result):
            for prev, nxt in zip(path.steps, path.steps[1:]):
                assert prev.output_net == nxt.input_net
