"""Register file: write-decoded enable registers + mux-tree read ports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder


@dataclass
class RegisterFilePorts:
    """Nets of an emitted register file."""

    read_data: List[Bus]
    #: Q buses of every register (exposed for simulation checks).
    registers: List[Bus]


def register_file(
    builder: NetlistBuilder,
    write_data: Bus,
    write_address: Bus,
    write_enable: str,
    read_addresses: List[Bus],
    reset_n: str = "",
) -> RegisterFilePorts:
    """Emit an ``2^k x width`` register file.

    ``write_address`` and each read address are ``k``-bit buses; write
    is gated by ``write_enable`` through a one-hot decoder.
    """
    n_regs = 1 << len(write_address)
    for address in read_addresses:
        if len(address) != len(write_address):
            raise NetlistError("read/write address widths differ")
    with builder.scope(builder.fresh("rf")):
        select = builder.decoder(write_address)
        enables = [builder.and_(bit, write_enable) for bit in select]
        registers: List[Bus] = []
        for reg in range(n_regs):
            registers.append(
                builder.register_en(
                    write_data, enables[reg], reset_n=reset_n or None
                )
            )
        read_data = [
            builder.mux_tree(registers, address) for address in read_addresses
        ]
        return RegisterFilePorts(read_data=read_data, registers=registers)
