"""Shared fixtures: a reduced catalog and its libraries.

The reduced catalog covers every structural feature (single-stage
gates, stacked gates, multi-output adders, sequential cells, buffers)
while keeping characterization fast; full-catalog behaviour is covered
by dedicated tests in ``tests/cells`` and the benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.cells.catalog import build_catalog
from repro.characterization.characterize import Characterizer


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the on-disk library cache at a per-session temp directory.

    Keeps the suite hermetic (never touches ``~/.cache/repro``) while
    still exercising the cache layer wherever flows enable it.
    """
    directory = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    yield directory
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

#: Families exercising every cell topology the code distinguishes.
SMALL_FAMILIES = [
    "INV",
    "BUF",
    "ND2",
    "ND4",
    "NR2",
    "NR2B",
    "OR2",
    "XNR2",
    "MUX2",
    "ADDH",
    "ADDF",
    "DFF",
    "DFFR",
    "LATQ",
]


@pytest.fixture(scope="session")
def small_specs():
    """Catalog slice with every topology class."""
    return build_catalog(families=SMALL_FAMILIES)


@pytest.fixture(scope="session")
def full_specs():
    """The full 304-cell Appendix A catalog."""
    return build_catalog()


@pytest.fixture(scope="session")
def characterizer():
    return Characterizer()


@pytest.fixture(scope="session")
def nominal_library(characterizer, small_specs):
    """Nominal library of the reduced catalog."""
    return characterizer.nominal_library(small_specs)


@pytest.fixture(scope="session")
def statistical_library(characterizer, small_specs):
    """Statistical library (30 MC samples) of the reduced catalog."""
    return characterizer.statistical_library(small_specs, n_samples=30, seed=9)


@pytest.fixture(scope="session")
def full_statistical_library(characterizer, full_specs):
    """Statistical library of the full 304-cell catalog."""
    return characterizer.statistical_library(full_specs, n_samples=30, seed=9)
