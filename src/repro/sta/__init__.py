"""Static timing analysis substrate.

Worst-case (single-value) NLDM STA over a mapped netlist:

* :mod:`repro.sta.graph` builds a vectorized timing graph (arc arrays,
  per-net loads, level-grouped LUT batches) from a netlist whose
  instances are bound to library cells;
* :mod:`repro.sta.engine` propagates arrivals/slews forward and
  required times backward, yielding per-endpoint slacks;
* :mod:`repro.sta.paths` extracts the worst path per unique endpoint
  (the population the paper's design metric is built on);
* :mod:`repro.sta.statistics` implements the paper's statistical path
  analysis: bilinear sigma lookups, convolution with correlation
  (eqs. 5-11).
"""

from repro.sta.graph import StaConfig, TimingGraph
from repro.sta.engine import TimingResult, analyze
from repro.sta.paths import PathStep, TimingPath, extract_worst_paths
from repro.sta.statistics import (
    DesignStatistics,
    PathStatistics,
    design_statistics,
    path_statistics,
    path_sigma_correlated,
)

__all__ = [
    "StaConfig",
    "TimingGraph",
    "TimingResult",
    "analyze",
    "PathStep",
    "TimingPath",
    "extract_worst_paths",
    "DesignStatistics",
    "PathStatistics",
    "design_statistics",
    "path_statistics",
    "path_sigma_correlated",
]
