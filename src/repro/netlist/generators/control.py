"""Control/decode logic generators.

Real microcontrollers are dominated by irregular control logic:
instruction decoders, interrupt priority logic, bus handshakes.  Two
seeded generators reproduce that texture:

* :func:`random_logic` — a layered random gate network (acyclic by
  construction) with a target gate count; every layer draws gates and
  fanins from a ``numpy`` generator, so a seed fully determines the
  netlist;
* :func:`decode_rom` — a two-level AND/OR "PLA" decoding an opcode
  field into control lines, the shape of a synthesized instruction
  decoder.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder

#: Gate families the random network draws from, with sampling weights
#: roughly matching the paper's Fig. 9 histogram (NAND/NOR/INV heavy).
_RANDOM_GATES = (
    ("INV", 1, 0.18),
    ("ND2", 2, 0.26),
    ("NR2", 2, 0.20),
    ("ND3", 3, 0.08),
    ("NR3", 3, 0.06),
    ("OR2", 2, 0.07),
    ("XNR2", 2, 0.06),
    ("MUX2", 3, 0.05),
    ("ND4", 4, 0.04),
)


def random_logic(
    builder: NetlistBuilder,
    inputs: Bus,
    n_gates: int,
    n_outputs: int,
    seed: int,
    n_layers: int = 12,
) -> Bus:
    """Emit a layered random gate network of bounded logic depth.

    The gates are organized into ``n_layers`` layers; each gate draws
    its fanins from the outputs of the two preceding layers (and the
    primary inputs), so the network depth is at most ``n_layers`` —
    giving the short/medium control paths of a real decoder rather
    than accidental thousand-gate chains.  Returns ``n_outputs`` nets
    sampled from the last layer.
    """
    if not inputs:
        raise NetlistError("random_logic needs at least one input net")
    if n_outputs > n_gates:
        raise NetlistError("cannot tap more outputs than gates")
    if n_layers < 1:
        raise NetlistError("need at least one layer")
    rng = np.random.default_rng(seed)
    names = [g[0] for g in _RANDOM_GATES]
    weights = np.array([g[2] for g in _RANDOM_GATES])
    weights = weights / weights.sum()
    fanins = {g[0]: g[1] for g in _RANDOM_GATES}

    per_layer = max(n_outputs, (n_gates + n_layers - 1) // n_layers)
    emitted = 0
    previous: List[Bus] = [list(inputs)]
    with builder.scope(builder.fresh("rnd")):
        while emitted < n_gates:
            sources = previous[-1] + (previous[-2] if len(previous) > 1 else [])
            layer: Bus = []
            for _ in range(min(per_layer, n_gates - emitted)):
                family = names[int(rng.choice(len(names), p=weights))]
                k = fanins[family]
                picks = [sources[int(rng.integers(len(sources)))] for _ in range(k)]
                if family == "INV":
                    net = builder.inv(picks[0])
                elif family == "ND2":
                    net = builder.nand(picks[0], picks[1])
                elif family == "NR2":
                    net = builder.nor(picks[0], picks[1])
                elif family == "ND3":
                    net = builder.nand3(*picks)
                elif family == "NR3":
                    net = builder.nor3(*picks)
                elif family == "OR2":
                    net = builder.or_(picks[0], picks[1])
                elif family == "XNR2":
                    net = builder.xnor(picks[0], picks[1])
                elif family == "MUX2":
                    net = builder.mux2(picks[0], picks[1], picks[2])
                else:  # ND4
                    net = builder.nand4(*picks)
                layer.append(net)
                emitted += 1
            previous.append(layer)
        last = previous[-1]
        if len(last) < n_outputs:
            last = last + previous[-2]
        indices = rng.choice(len(last), size=n_outputs, replace=False)
        return [last[int(i)] for i in sorted(indices)]


def decode_rom(
    builder: NetlistBuilder,
    opcode: Bus,
    n_outputs: int,
    seed: int,
    terms_per_output: int = 3,
) -> Bus:
    """Two-level AND/OR decode of an opcode field into control lines.

    Each output ORs a few random minterm-like AND terms over the opcode
    bits and their complements — the canonical PLA structure of an
    instruction decoder.
    """
    if not opcode:
        raise NetlistError("decode_rom needs opcode bits")
    rng = np.random.default_rng(seed)
    with builder.scope(builder.fresh("dec")):
        inverted = [builder.inv(bit) for bit in opcode]
        literals = list(opcode) + inverted
        outputs: Bus = []
        for _ in range(n_outputs):
            terms: Bus = []
            for _ in range(terms_per_output):
                k = int(rng.integers(2, min(4, len(literals)) + 1))
                picks = rng.choice(len(literals), size=k, replace=False)
                terms.append(builder.reduce_and([literals[int(i)] for i in picks]))
            outputs.append(builder.reduce_or(terms))
        return outputs
