"""Unit conventions."""

import pytest

from repro import units


class TestConversions:
    def test_ff_to_pf(self):
        assert units.ff_to_pf(1000.0) == pytest.approx(1.0)

    def test_ps_to_ns(self):
        assert units.ps_to_ns(300.0) == pytest.approx(0.3)

    def test_guard_band_is_paper_300ps(self):
        assert units.GUARD_BAND_NS == pytest.approx(0.3)

    def test_nominal_corner_is_papers(self):
        assert units.NOMINAL_VDD == pytest.approx(1.1)
        assert units.NOMINAL_TEMPERATURE == pytest.approx(25.0)

    def test_identity_helpers(self):
        assert units.ns(1.5) == 1.5
        assert units.pf(0.01) == 0.01

    def test_kohm_times_pf_is_ns(self):
        # the whole package's unit system hinges on this identity
        r_kohm, c_pf = 10.0, 0.05
        seconds = (r_kohm * 1e3) * (c_pf * units.CAP_UNIT_FARADS)
        assert seconds / units.TIME_UNIT_SECONDS == pytest.approx(r_kohm * c_pf)
