"""Forward/backward timing propagation.

Worst-case single-value STA: per net one arrival and one slew, each the
maximum over rise/fall and over incoming arcs.  The characterization
surrogate keeps rise and fall close, so the merged analysis loses
little accuracy while halving the state.

The engine evaluates whole arc groups (same LUTs, same logic level)
with one vectorized bilinear interpolation; a full pass over the
~18k-gate microcontroller takes tens of milliseconds, which is what
makes the synthesis sizing loop and the paper's 80-run evaluation sweep
tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TimingError
from repro.kernels.dispatch import resolve_kernel
from repro.kernels.sta import evaluate_table_groups
from repro.liberty.model import TimingArc
from repro.observe import get_tracer
from repro.sta.graph import Endpoint, TimingGraph
from repro.units import GUARD_BAND_NS

_NEG_INF = -1e30
_POS_INF = 1e30


def _arc_delay_transition(
    arc: TimingArc,
    slews: np.ndarray,
    loads: np.ndarray,
    kernel: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Worst (rise/fall-merged) delay and output transition of an arc."""
    delay_tables = arc.delay_tables()
    transition_tables = arc.transition_tables()
    if not delay_tables or not transition_tables:
        raise TimingError("timing arc lacks delay or transition tables")
    delay, transition = evaluate_table_groups(
        [delay_tables, transition_tables], [slews, slews], [loads, loads], kernel
    )
    return delay, transition


@dataclass
class LaunchInfo:
    """Clock->Q launch of one sequential instance."""

    instance: str
    cell_name: str
    out_pin: str
    delay: float
    q_net: int


@dataclass
class TimingResult:
    """Outcome of one STA pass."""

    graph: TimingGraph
    clock_period: float
    guard_band: float
    arrival: np.ndarray
    slew: np.ndarray
    required: np.ndarray
    arc_delay: np.ndarray
    arc_transition: np.ndarray
    launches: Dict[int, LaunchInfo]
    endpoint_slacks: np.ndarray

    @property
    def effective_period(self) -> float:
        """Clock period minus the guard band (paper Sec. VII)."""
        return self.clock_period - self.guard_band

    @property
    def wns(self) -> float:
        """Worst negative slack (worst endpoint slack, really)."""
        return float(self.endpoint_slacks.min())

    @property
    def tns(self) -> float:
        """Total negative slack."""
        return float(np.minimum(self.endpoint_slacks, 0.0).sum())

    @property
    def met(self) -> bool:
        """True when every endpoint has non-negative slack."""
        return self.wns >= -1e-12

    def net_slack(self, net_id: int) -> float:
        """Slack of a net (required - arrival)."""
        return float(self.required[net_id] - self.arrival[net_id])

    def endpoint_required(self, endpoint: Endpoint) -> float:
        """Required arrival time at an endpoint."""
        return self.effective_period - endpoint.setup

    def worst_endpoint(self) -> Endpoint:
        """The endpoint with the smallest slack."""
        index = int(np.argmin(self.endpoint_slacks))
        return self.graph.endpoints[index]


def analyze(
    graph: TimingGraph,
    clock_period: float,
    guard_band: float = GUARD_BAND_NS,
    kernel: Optional[str] = None,
) -> TimingResult:
    """Run one full forward + backward STA pass.

    ``kernel`` selects the evaluation kernel (see :mod:`repro.kernels`):
    ``"vectorized"`` interpolates whole topological levels at once,
    ``"scalar"`` is the per-query reference; ``None`` adopts the active
    kernel.  Results are bit-identical either way.
    """
    if clock_period <= guard_band:
        raise TimingError(
            f"clock period {clock_period} ns must exceed the guard band "
            f"{guard_band} ns"
        )
    kernel = resolve_kernel(kernel)
    tracer = get_tracer()
    tracer.add("sta.analyze_calls", 1)
    tracer.add("sta.node_visits", len(graph.net_names))
    tracer.add("sta.arc_evaluations", graph.n_arcs)
    with tracer.span("sta.analyze", nets=len(graph.net_names), arcs=graph.n_arcs):
        return _analyze(graph, clock_period, guard_band, kernel)


def _analyze(
    graph: TimingGraph,
    clock_period: float,
    guard_band: float,
    kernel: Optional[str] = None,
) -> TimingResult:
    config = graph.config
    n_nets = len(graph.net_names)
    arrival = np.full(n_nets, _NEG_INF)
    slew = np.full(n_nets, config.default_slew)

    # sources: primary inputs
    for net_id in graph.primary_input_ids:
        arrival[net_id] = 0.0
        slew[net_id] = config.input_slew

    # sources: sequential launches (group by cell for vectorization)
    launches: Dict[int, LaunchInfo] = {}
    by_cell: Dict[str, List] = {}
    for instance in graph.launch_instances:
        by_cell.setdefault(instance.cell, []).append(instance)
    for cell_name, instances in by_cell.items():
        cell = graph.library.cell(cell_name)
        out_pin = instances[0].function.output_pins[0]
        clock_pin = instances[0].function.clock_pin
        arc = cell.pin(out_pin).arc_from(clock_pin)
        q_ids = np.array(
            [graph.net_ids[i.net_of(out_pin)] for i in instances], dtype=np.int64
        )
        clock_slews = np.full(q_ids.size, config.clock_slew)
        delays, transitions = _arc_delay_transition(
            arc, clock_slews, graph.loads[q_ids], kernel
        )
        arrival[q_ids] = delays
        slew[q_ids] = transitions
        for instance, q_id, delay in zip(instances, q_ids, delays):
            launches[int(q_id)] = LaunchInfo(
                instance=instance.name,
                cell_name=cell_name,
                out_pin=out_pin,
                delay=float(delay),
                q_net=int(q_id),
            )

    # forward propagation, level by level — all arc groups of a level
    # interpolate in one batched kernel call (arcs within a level never
    # feed each other, so their input slews are final before the level
    # evaluates; the per-group scatter below runs in the same order as
    # the former per-group loop, and max-merges are exact anyway)
    arc_delay = np.zeros(graph.n_arcs)
    arc_transition = np.zeros(graph.n_arcs)
    slew_written = np.zeros(n_nets, dtype=bool)
    for _level, members in groupby(graph.level_groups, key=lambda pair: pair[0]):
        groups = [group for _, group in members]
        indices_list = [np.asarray(g.indices, dtype=np.int64) for g in groups]
        src_list = [graph.arc_src[indices] for indices in indices_list]
        dst_list = [graph.arc_dst[indices] for indices in indices_list]
        delay_groups = [g.arc.delay_tables() for g in groups]
        transition_groups = [g.arc.transition_tables() for g in groups]
        if any(not d or not t for d, t in zip(delay_groups, transition_groups)):
            raise TimingError("timing arc lacks delay or transition tables")
        slews_list = [slew[src] for src in src_list]
        loads_list = [graph.loads[dst] for dst in dst_list]
        delays_list = evaluate_table_groups(
            delay_groups, slews_list, loads_list, kernel
        )
        transitions_list = evaluate_table_groups(
            transition_groups, slews_list, loads_list, kernel
        )
        for indices, src, dst, delays, transitions in zip(
            indices_list, src_list, dst_list, delays_list, transitions_list
        ):
            arc_delay[indices] = delays
            arc_transition[indices] = transitions
            np.maximum.at(arrival, dst, arrival[src] + delays)
            # the first writer replaces the default slew; later writers
            # of the same net (other input arcs of its driver) max-merge
            fresh = dst[~slew_written[dst]]
            slew[fresh] = _NEG_INF
            slew_written[dst] = True
            np.maximum.at(slew, dst, transitions)

    if np.any(arrival[graph.arc_dst] <= _NEG_INF / 2):
        bad = graph.arc_dst[arrival[graph.arc_dst] <= _NEG_INF / 2][:3]
        names = [graph.net_names[int(b)] for b in bad]
        raise TimingError(f"unreached nets during propagation: {names}")

    # endpoint slacks
    effective = clock_period - guard_band
    endpoint_slacks = np.array(
        [
            (effective - endpoint.setup) - arrival[endpoint.net_id]
            for endpoint in graph.endpoints
        ]
    )

    # backward required times (levels descending)
    required = np.full(n_nets, _POS_INF)
    for endpoint in graph.endpoints:
        required[endpoint.net_id] = min(
            required[endpoint.net_id], effective - endpoint.setup
        )
    for _level, group in reversed(graph.level_groups):
        indices = np.asarray(group.indices, dtype=np.int64)
        src = graph.arc_src[indices]
        dst = graph.arc_dst[indices]
        np.minimum.at(required, src, required[dst] - arc_delay[indices])

    return TimingResult(
        graph=graph,
        clock_period=clock_period,
        guard_band=guard_band,
        arrival=arrival,
        slew=slew,
        required=required,
        arc_delay=arc_delay,
        arc_transition=arc_transition,
        launches=launches,
        endpoint_slacks=endpoint_slacks,
    )
