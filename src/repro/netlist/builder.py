"""Structural netlist builder.

Thin layer over :class:`~repro.netlist.model.Netlist` that the design
generators use: auto-named gate emitters for every catalog family,
hierarchical naming scopes, and word-level helpers (buses, ripple
adders, mux trees, one-hot decoders, registers).

Gate emitters return the output net name(s); word helpers operate on
``List[str]`` buses, least-significant bit first.

The builder only emits families that exist in the catalog (there is no
AND/XOR family, so ``and_`` and ``xor`` are emitted as NAND+INV and
XNOR+INV — the same freedom a synthesis tool has when a library lacks
a function, see paper Sec. VII.A).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Netlist

Bus = List[str]


class NetlistBuilder:
    """Builds a netlist with auto-named instances and nets."""

    def __init__(self, name: str):
        self.netlist = Netlist(name)
        self._scopes: List[str] = []
        self._counters: Dict[str, int] = {}
        self._tie_nets: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Hierarchical naming scope: nested emitters get the prefix."""
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    def fresh(self, kind: str) -> str:
        """Fresh hierarchical name for an instance or net."""
        prefix = "/".join(self._scopes) + "/" if self._scopes else ""
        key = f"{prefix}{kind}"
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        return f"{key}{index}"

    # ------------------------------------------------------------------
    # Ports and constants
    # ------------------------------------------------------------------

    def input(self, name: str) -> str:
        """Primary input; returns its net."""
        return self.netlist.add_input_port(name)

    def input_bus(self, name: str, width: int) -> Bus:
        """Bus of primary inputs ``name[0..width-1]``, LSB first."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def output(self, name: str, net: str) -> None:
        """Primary output fed by ``net``."""
        self.netlist.add_output_port(name, net)

    def output_bus(self, name: str, nets: Sequence[str]) -> None:
        """Bus of primary outputs, LSB first."""
        for i, net in enumerate(nets):
            self.output(f"{name}[{i}]", net)

    def clock(self, name: str = "clk") -> str:
        """Clock input port."""
        net = self.input(name)
        self.netlist.set_clock(name)
        return net

    def tie(self, value: int) -> str:
        """Constant 0/1 net, realized as a lazily created input port.

        The surrogate library has no tie cells, so constants enter as
        dedicated primary inputs (arrival 0, never timing-critical).
        """
        if value not in (0, 1):
            raise NetlistError(f"tie value must be 0 or 1, got {value}")
        if value not in self._tie_nets:
            self._tie_nets[value] = self.input(f"tie{value}")
        return self._tie_nets[value]

    @property
    def tie_values(self) -> Dict[str, int]:
        """Port name -> constant value, for the simulator."""
        return {net: value for value, net in self._tie_nets.items()}

    # ------------------------------------------------------------------
    # Gate emitters
    # ------------------------------------------------------------------

    def _emit(
        self,
        family: str,
        connections: Dict[str, str],
        outs: Sequence[str],
        out_nets: Optional[Dict[str, str]] = None,
    ) -> List[str]:
        name = self.fresh(family.lower())
        resolved = {pin: f"{name}.{pin}" for pin in outs}
        if out_nets:
            resolved.update(out_nets)
        connections = dict(connections)
        connections.update(resolved)
        self.netlist.add_instance(name, family, connections)
        return [resolved[pin] for pin in outs]

    def inv(self, a: str, out: Optional[str] = None) -> str:
        """Inverter; returns the Z net."""
        return self._emit("INV", {"A": a}, ["Z"], {"Z": out} if out else None)[0]

    def buf(self, a: str) -> str:
        """Buffer; returns the Z net."""
        return self._emit("BUF", {"A": a}, ["Z"])[0]

    def nand(self, a: str, b: str) -> str:
        """2-input NAND."""
        return self._emit("ND2", {"A": a, "B": b}, ["Z"])[0]

    def nand3(self, a: str, b: str, c: str) -> str:
        """3-input NAND."""
        return self._emit("ND3", {"A": a, "B": b, "C": c}, ["Z"])[0]

    def nand4(self, a: str, b: str, c: str, d: str) -> str:
        """4-input NAND."""
        return self._emit("ND4", {"A": a, "B": b, "C": c, "D": d}, ["Z"])[0]

    def nor(self, a: str, b: str) -> str:
        """2-input NOR."""
        return self._emit("NR2", {"A": a, "B": b}, ["Z"])[0]

    def nor2b(self, a: str, b: str) -> str:
        """Z = !A * B (NOR with bubbled B input)."""
        return self._emit("NR2B", {"A": a, "B": b}, ["Z"])[0]

    def nor3(self, a: str, b: str, c: str) -> str:
        """3-input NOR."""
        return self._emit("NR3", {"A": a, "B": b, "C": c}, ["Z"])[0]

    def nor4(self, a: str, b: str, c: str, d: str) -> str:
        """4-input NOR."""
        return self._emit("NR4", {"A": a, "B": b, "C": c, "D": d}, ["Z"])[0]

    def or_(self, a: str, b: str) -> str:
        """2-input OR."""
        return self._emit("OR2", {"A": a, "B": b}, ["Z"])[0]

    def or3(self, a: str, b: str, c: str) -> str:
        """3-input OR."""
        return self._emit("OR3", {"A": a, "B": b, "C": c}, ["Z"])[0]

    def or4(self, a: str, b: str, c: str, d: str) -> str:
        """4-input OR."""
        return self._emit("OR4", {"A": a, "B": b, "C": c, "D": d}, ["Z"])[0]

    def and_(self, a: str, b: str) -> str:
        """AND via NAND + INV (no AND family in the catalog)."""
        return self.inv(self.nand(a, b))

    def and3(self, a: str, b: str, c: str) -> str:
        """3-input AND (NAND + INV)."""
        return self.inv(self.nand3(a, b, c))

    def and4(self, a: str, b: str, c: str, d: str) -> str:
        """4-input AND (NAND + INV)."""
        return self.inv(self.nand4(a, b, c, d))

    def xnor(self, a: str, b: str) -> str:
        """2-input XNOR."""
        return self._emit("XNR2", {"A": a, "B": b}, ["Z"])[0]

    def xnor3(self, a: str, b: str, c: str) -> str:
        """3-input XNOR."""
        return self._emit("XNR3", {"A": a, "B": b, "C": c}, ["Z"])[0]

    def xor(self, a: str, b: str) -> str:
        """XOR via XNOR + INV (no XOR family in the catalog)."""
        return self.inv(self.xnor(a, b))

    def mux2(self, d0: str, d1: str, s: str, out: Optional[str] = None) -> str:
        """2:1 mux (Z = S ? D1 : D0)."""
        return self._emit(
            "MUX2", {"D0": d0, "D1": d1, "S": s}, ["Z"], {"Z": out} if out else None
        )[0]

    def mux4(self, d0: str, d1: str, d2: str, d3: str, s0: str, s1: str) -> str:
        """4:1 mux with a 2-bit one-per-pin select."""
        return self._emit(
            "MUX4", {"D0": d0, "D1": d1, "D2": d2, "D3": d3, "S0": s0, "S1": s1}, ["Z"]
        )[0]

    def addh(self, a: str, b: str) -> Tuple[str, str]:
        """Half adder; returns (sum, carry)."""
        s, co = self._emit("ADDH", {"A": a, "B": b}, ["S", "CO"])
        return s, co

    def addf(self, a: str, b: str, ci: str) -> Tuple[str, str]:
        """Full adder; returns (sum, carry)."""
        s, co = self._emit("ADDF", {"A": a, "B": b, "CI": ci}, ["S", "CO"])
        return s, co

    def dff(self, d: str, reset_n: Optional[str] = None, out: Optional[str] = None) -> str:
        """Flip-flop on the design clock; returns Q."""
        clock = self.netlist.clock
        if not clock:
            raise NetlistError("declare the clock before emitting flip-flops")
        out_nets = {"Q": out} if out else None
        if reset_n is None:
            return self._emit("DFF", {"D": d, "CP": clock}, ["Q"], out_nets)[0]
        return self._emit("DFFR", {"D": d, "CP": clock, "RN": reset_n}, ["Q"], out_nets)[0]

    def latch(self, d: str, enable: str) -> str:
        """Level-sensitive latch; returns Q."""
        return self._emit("LATQ", {"D": d, "EN": enable}, ["Q"])[0]

    # ------------------------------------------------------------------
    # Word-level helpers (buses are LSB-first lists of nets)
    # ------------------------------------------------------------------

    def inv_word(self, a: Bus) -> Bus:
        """Bitwise inversion of a bus."""
        return [self.inv(bit) for bit in a]

    def and_word(self, a: Bus, b: Bus) -> Bus:
        """Bitwise AND of two buses."""
        self._check_widths(a, b)
        return [self.and_(x, y) for x, y in zip(a, b)]

    def or_word(self, a: Bus, b: Bus) -> Bus:
        """Bitwise OR of two buses."""
        self._check_widths(a, b)
        return [self.or_(x, y) for x, y in zip(a, b)]

    def xor_word(self, a: Bus, b: Bus) -> Bus:
        """Bitwise XOR of two buses."""
        self._check_widths(a, b)
        return [self.xor(x, y) for x, y in zip(a, b)]

    def ripple_adder(self, a: Bus, b: Bus, carry_in: Optional[str] = None) -> Tuple[Bus, str]:
        """Ripple-carry adder; returns (sum bus, carry out)."""
        self._check_widths(a, b)
        carry = carry_in if carry_in is not None else self.tie(0)
        total: Bus = []
        for x, y in zip(a, b):
            s, carry = self.addf(x, y, carry)
            total.append(s)
        return total, carry

    def subtractor(self, a: Bus, b: Bus) -> Tuple[Bus, str]:
        """a - b via two's complement; returns (difference, carry_out)."""
        return self.ripple_adder(a, self.inv_word(b), carry_in=self.tie(1))

    def incrementer(self, a: Bus) -> Bus:
        """a + 1 with a half-adder chain."""
        carry = self.tie(1)
        result: Bus = []
        for bit in a:
            s, carry = self.addh(bit, carry)
            result.append(s)
        return result

    def equals(self, a: Bus, b: Bus) -> str:
        """1 when the buses are equal (XNOR reduce-AND tree)."""
        self._check_widths(a, b)
        return self.reduce_and([self.xnor(x, y) for x, y in zip(a, b)])

    def reduce_and(self, bits: Bus) -> str:
        """AND-reduce a list of nets with a NAND+INV tree."""
        if not bits:
            raise NetlistError("reduce_and needs at least one net")
        level = list(bits)
        while len(level) > 1:
            nxt: Bus = []
            for index in range(0, len(level), 4):
                chunk = level[index : index + 4]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                elif len(chunk) == 2:
                    nxt.append(self.inv(self.nand(*chunk)))
                elif len(chunk) == 3:
                    nxt.append(self.inv(self.nand3(*chunk)))
                else:
                    nxt.append(self.inv(self.nand4(*chunk)))
            level = nxt
        return level[0]

    def reduce_or(self, bits: Bus) -> str:
        """OR-reduce a list of nets with an OR tree."""
        if not bits:
            raise NetlistError("reduce_or needs at least one net")
        level = list(bits)
        while len(level) > 1:
            nxt: Bus = []
            for index in range(0, len(level), 4):
                chunk = level[index : index + 4]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                elif len(chunk) == 2:
                    nxt.append(self.or_(*chunk))
                elif len(chunk) == 3:
                    nxt.append(self.or3(*chunk))
                else:
                    nxt.append(self.or4(*chunk))
            level = nxt
        return level[0]

    def mux_word(self, d0: Bus, d1: Bus, select: str) -> Bus:
        """Per-bit 2:1 mux between two buses."""
        self._check_widths(d0, d1)
        return [self.mux2(x, y, select) for x, y in zip(d0, d1)]

    def mux4_word(self, words: Sequence[Bus], s0: str, s1: str) -> Bus:
        """Per-bit 4:1 mux across four buses."""
        if len(words) != 4:
            raise NetlistError("mux4_word needs exactly 4 input words")
        width = len(words[0])
        for word in words:
            if len(word) != width:
                raise NetlistError("mux4_word inputs must share a width")
        return [
            self.mux4(words[0][i], words[1][i], words[2][i], words[3][i], s0, s1)
            for i in range(width)
        ]

    def mux_tree(self, words: Sequence[Bus], select: Bus) -> Bus:
        """General 2^k:1 word multiplexer from MUX2 layers."""
        if len(words) != (1 << len(select)):
            raise NetlistError(
                f"mux_tree: {len(words)} words need a {len(select)}-bit select "
                f"covering {1 << len(select)} words"
            )
        level = [list(word) for word in words]
        for bit in select:
            level = [
                self.mux_word(level[i], level[i + 1], bit)
                for i in range(0, len(level), 2)
            ]
        return level[0]

    def decoder(self, select: Bus) -> Bus:
        """k-to-2^k one-hot decoder."""
        inverted = [self.inv(bit) for bit in select]
        outputs: Bus = []
        for code in range(1 << len(select)):
            terms = [
                select[i] if (code >> i) & 1 else inverted[i]
                for i in range(len(select))
            ]
            outputs.append(self.reduce_and(terms))
        return outputs

    def register(self, d: Bus, reset_n: Optional[str] = None) -> Bus:
        """Word of flip-flops."""
        return [self.dff(bit, reset_n) for bit in d]

    def register_en(self, d: Bus, enable: str, reset_n: Optional[str] = None) -> Bus:
        """Register with load-enable: q <= enable ? d : q.

        The feedback is wired by pre-naming the flip-flop output net.
        """
        qs: Bus = []
        for bit in d:
            q_net = self.fresh("qen")
            mux = self.mux2(q_net, bit, enable)
            self.dff(mux, reset_n, out=q_net)
            qs.append(q_net)
        return qs

    @staticmethod
    def _check_widths(a: Bus, b: Bus) -> None:
        if len(a) != len(b):
            raise NetlistError(f"bus width mismatch: {len(a)} vs {len(b)}")
