"""The whole-program graph builder: resolution quality on small trees.

Each test feeds :func:`build_graph_from_sources` a two-or-three file
program and asserts the *resolution keys* the linker produced — the
rules never see source text, only these keys, so this is where
cross-module precision is actually proven.
"""

from repro.lint.graph import ProgramGraph, build_graph, build_graph_from_sources


def calls_of(graph: ProgramGraph, key: str):
    """Callee keys recorded for one function."""
    return [site.callee for site in graph.functions[key].calls]


class TestImportResolution:
    def test_cross_module_function_call(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "from repro.flow.b import helper\n\n"
                "def run():\n"
                "    return helper()\n"
            ),
            "src/repro/flow/b.py": "def helper():\n    return 1\n",
        })
        assert calls_of(graph, "repro.flow.a:run") == ["repro.flow.b:helper"]

    def test_aliased_import(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "import repro.flow.b as bee\n\n"
                "def run():\n"
                "    return bee.helper()\n"
            ),
            "src/repro/flow/b.py": "def helper():\n    return 1\n",
        })
        assert calls_of(graph, "repro.flow.a:run") == ["repro.flow.b:helper"]

    def test_reexport_is_chased_to_the_definer(self):
        graph = build_graph_from_sources({
            "src/repro/flow/__init__.py": (
                "from repro.flow.impl import helper\n"
            ),
            "src/repro/flow/impl.py": "def helper():\n    return 1\n",
            "src/repro/serve/user.py": (
                "from repro.flow import helper\n\n"
                "def run():\n"
                "    return helper()\n"
            ),
        })
        assert calls_of(graph, "repro.serve.user:run") == [
            "repro.flow.impl:helper"
        ]

    def test_external_call_keys(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "import time\n\n"
                "def run():\n"
                "    return time.sleep(1)\n"
            ),
        })
        assert calls_of(graph, "repro.flow.a:run") == ["ext:time.sleep"]

    def test_import_edges_and_graph(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": "import repro.flow.b\n",
            "src/repro/flow/b.py": "X = 1\n",
        })
        assert graph.import_graph()["repro.flow.a"] == {"repro.flow.b"}

    def test_function_level_imports_are_not_module_edges(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "def run():\n"
                "    import repro.flow.b\n"
                "    return repro.flow.b.X\n"
            ),
            "src/repro/flow/b.py": "X = 1\n",
        })
        assert graph.import_graph().get("repro.flow.a", set()) == set()


class TestLocalResolution:
    def test_forward_reference_to_later_def(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "def run():\n"
                "    return later()\n\n"
                "def later():\n"
                "    return 1\n"
            ),
        })
        assert calls_of(graph, "repro.flow.a:run") == ["repro.flow.a:later"]

    def test_self_method_call(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "class Stage:\n"
                "    def run(self):\n"
                "        return self.step()\n\n"
                "    def step(self):\n"
                "        return 1\n"
            ),
        })
        assert calls_of(graph, "repro.flow.a:Stage.run") == [
            "repro.flow.a:Stage.step"
        ]

    def test_constructed_local_variable_type(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "from repro.flow.b import Engine\n\n"
                "def run():\n"
                "    engine = Engine()\n"
                "    return engine.fire()\n"
            ),
            "src/repro/flow/b.py": (
                "class Engine:\n"
                "    def fire(self):\n"
                "        return 1\n"
            ),
        })
        calls = calls_of(graph, "repro.flow.a:run")
        assert "repro.flow.b:Engine.fire" in calls

    def test_method_on_return_type_chains(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "class Child:\n"
                "    def inc(self):\n"
                "        return 1\n\n"
                "class Counter:\n"
                "    def labels(self) -> 'Child':\n"
                "        return Child()\n\n"
                "def run(counter: Counter):\n"
                "    return counter.labels().inc()\n"
            ),
        })
        assert "repro.flow.a:Child.inc" in calls_of(graph, "repro.flow.a:run")

    def test_nested_def_key(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "def outer():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner()\n"
            ),
        })
        assert "repro.flow.a:outer.<locals>.inner" in graph.functions
        assert calls_of(graph, "repro.flow.a:outer") == [
            "repro.flow.a:outer.<locals>.inner"
        ]

    def test_unknown_stays_opaque_not_guessed(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "def run(thing):\n"
                "    return thing.spin()\n"
            ),
        })
        (callee,) = calls_of(graph, "repro.flow.a:run")
        assert callee.startswith("?:")


class TestStructure:
    def test_async_and_lock_markers(self):
        graph = build_graph_from_sources({
            "src/repro/serve/a.py": (
                "import threading\n\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.n = 0\n\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.n += 1\n\n"
                "async def handle():\n"
                "    return 1\n"
            ),
        })
        assert graph.functions["repro.serve.a:handle"].is_async
        klass = graph.classes["repro.serve.a:Box"]
        assert klass.lock_attrs == ["_lock"]
        (mutation,) = graph.functions["repro.serve.a:Box.bump"].mutations
        assert mutation.attr == "n"
        assert mutation.under_lock

    def test_syntax_error_recorded_not_fatal(self):
        graph = build_graph_from_sources({
            "src/repro/flow/bad.py": "def broken(:\n",
            "src/repro/flow/ok.py": "def fine():\n    return 1\n",
        })
        assert "src/repro/flow/bad.py" in graph.syntax_errors
        assert "repro.flow.ok:fine" in graph.functions

    def test_callers_of_inverts_edges(self):
        graph = build_graph_from_sources({
            "src/repro/flow/a.py": (
                "from repro.flow.b import helper\n\n"
                "def run():\n"
                "    return helper()\n"
            ),
            "src/repro/flow/b.py": "def helper():\n    return 1\n",
        })
        ((caller, site),) = graph.callers_of("repro.flow.b:helper")
        assert caller.key == "repro.flow.a:run"
        assert site.line == 4

    def test_payload_round_trip(self):
        graph = build_graph_from_sources({
            "src/repro/serve/a.py": (
                "import threading\n"
                "from repro.flow.b import helper\n\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.n = 0\n\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.n += 1\n\n"
                "async def handle():\n"
                "    return helper()\n"
            ),
            "src/repro/flow/b.py": "def helper():\n    return 1\n",
        })
        revived = ProgramGraph.from_payload(graph.to_payload())
        assert revived.to_payload() == graph.to_payload()
        assert set(revived.functions) == set(graph.functions)
        assert revived.functions["repro.serve.a:handle"].is_async
        assert revived.classes["repro.serve.a:Box"].lock_attrs == ["_lock"]


class TestBuildGraphOnDisk:
    def test_build_graph_uses_relative_display_paths(self, tmp_path):
        package = tmp_path / "src" / "repro" / "flow"
        package.mkdir(parents=True)
        (package / "mod.py").write_text("def f():\n    return 1\n")
        graph = build_graph([tmp_path / "src"], root=tmp_path)
        module = graph.modules["repro.flow.mod"]
        assert module.path == "src/repro/flow/mod.py"
        assert "repro.flow.mod:f" in graph.functions
