"""Bench: Fig. 16 — local vs total variation share per path depth."""

from conftest import show

from repro.experiments import fig16_local_share


def test_fig16_local_share(benchmark, context):
    result = benchmark.pedantic(
        fig16_local_share.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    rows = {row["path"]: row for row in result.rows}
    assert set(rows) == {"short", "medium", "long"}
    # local variation dominates short paths and decays with depth
    # (paper: 65% short, 37% medium, 6% long)
    assert rows["short"]["local_share"] > rows["medium"]["local_share"]
    assert rows["medium"]["local_share"] > rows["long"]["local_share"]
    assert rows["short"]["local_share"] > 0.4
    assert rows["long"]["local_share"] < 0.5
    # sanity: local-only sigma can never exceed the total
    for row in result.rows:
        assert row["sigma_local_ns"] <= row["sigma_total_ns"] * (1 + 1e-6)
