"""Power-targeted tuning and the clock-uncertainty payoff.

Demonstrates the two extensions beyond the paper's evaluation:

1. Sec. III's note that the tuning metric "can also be adjusted to
   ... transition power": characterize with energy tables, tune
   against the energy sigma, and compare with delay-driven windows;
2. the paper's motivation made quantitative: how much clock
   uncertainty (guard band) a 99.7% timing yield needs on the baseline
   vs the tuned design.

Run:  python examples/power_and_yield.py
"""

from __future__ import annotations

import numpy as np

from repro.cells import build_catalog
from repro.characterization import Characterizer, leakage_statistics
from repro.cells.catalog import spec_by_name
from repro.core import LibraryTuner, power_sigma_windows, write_sdc
from repro.core.power_tuning import compare_window_maps, pin_equivalent_power_sigma
from repro.experiments.base import ExperimentContext
from repro.flow.yieldmodel import required_uncertainty


def main() -> None:
    specs = build_catalog(families=["INV", "ND2", "NR2", "XNR2", "ADDF"])
    library = Characterizer(include_power=True).statistical_library(
        specs, n_samples=40, seed=13
    )

    print("power-sigma surfaces grow with drive strength (energy mismatch):")
    for name in ("INV_1", "INV_8", "INV_32"):
        sigma = pin_equivalent_power_sigma(library.cell(name).pin("Z"))
        print(f"  {name:7s} energy sigma max {sigma.values.max():.2e} pJ")

    sigmas = np.stack([
        pin_equivalent_power_sigma(cell.pin(pin.name)).values
        for cell in library
        for pin in cell.output_pins()
    ])
    ceiling = float(np.quantile(sigmas, 0.7))
    power_windows = power_sigma_windows(library, ceiling)
    delay_windows = LibraryTuner(library).tune("sigma_ceiling", 0.03).windows
    overlaps = compare_window_maps(delay_windows, power_windows)
    print(
        f"\npower ceiling {ceiling:.2e} pJ: mean overlap with delay windows "
        f"{np.mean(list(overlaps.values())):.0%} — different metric, different cut"
    )

    inv1 = spec_by_name(specs, "INV_1")
    mean, sigma, skew = leakage_statistics(inv1, sigma_vth=0.03, seed=4)
    print(
        f"\nINV_1 leakage under 30 mV vth mismatch: mean {mean:.4f} uW, "
        f"sigma {sigma:.4f} uW, skew {skew:.2f} (log-normal tail)"
    )

    print("\nclock uncertainty for 99.7% timing yield (quick-scale design):")
    context = ExperimentContext()
    period = context.standard_periods()["medium"]
    for label, run in (
        ("baseline", context.flow.baseline(period)),
        ("tuned", context.flow.tuned(period, "sigma_ceiling", 0.03)),
    ):
        uncertainty = required_uncertainty(run.stats.path_stats, period)
        print(
            f"  {label:9s} design sigma {run.design_sigma:.4f} ns -> "
            f"needs {uncertainty * 1000:.0f} ps of guard band"
        )

    script = write_sdc(LibraryTuner(library).tune("sigma_ceiling", 0.02))
    print(f"\nSDC export of the delay tuning: {len(script.splitlines())} lines, e.g.")
    for line in script.splitlines()[2:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
