"""Look-up-table restriction (paper Sec. VI.C).

"The synthesis tool only allows the confinement of a look-up table
based on output pins.  Thus, the worst case situation has to be taken
into account."  Per output pin:

1. build the maximum equivalent LUT over every sigma table of the
   pin's timing arcs;
2. binarize against the extracted threshold (smaller = logic one);
3. run the largest-rectangle algorithm;
4. map the rectangle coordinates onto the physical axes: the minimum
   and maximum slew/load values the synthesis tool may use the pin at.

A pin whose binary LUT has no ones at all (its sigma exceeds the
threshold everywhere) gets ``None`` — the cell is effectively removed
from the library, the coarse behaviour classic library tuning would
have produced for every restricted cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.binary_lut import binarize_at_most
from repro.core.rectangle import Rectangle, largest_rectangle
from repro.errors import TuningError
from repro.liberty.model import Cell, Lut, Pin


@dataclass(frozen=True)
class SlewLoadWindow:
    """Allowed operating window of an output pin (inclusive, ns / pF)."""

    min_slew: float
    max_slew: float
    min_load: float
    max_load: float

    def __post_init__(self) -> None:
        if not (0 <= self.min_slew <= self.max_slew):
            raise TuningError(f"invalid slew window [{self.min_slew}, {self.max_slew}]")
        if not (0 <= self.min_load <= self.max_load):
            raise TuningError(f"invalid load window [{self.min_load}, {self.max_load}]")

    def allows(self, slew: float, load: float, tolerance: float = 1e-9) -> bool:
        """True when an instance at (input slew, output load) is legal."""
        return (
            self.min_slew - tolerance <= slew <= self.max_slew + tolerance
            and self.min_load - tolerance <= load <= self.max_load + tolerance
        )

    def slack_to(self, slew: float, load: float) -> float:
        """Worst normalized violation; >= 0 when (slew, load) is legal.

        Used by the synthesizer to rank candidate cells: the most
        negative dimension dominates.
        """
        margins = (
            (slew - self.min_slew) / max(self.max_slew, 1e-12),
            (self.max_slew - slew) / max(self.max_slew, 1e-12),
            (load - self.min_load) / max(self.max_load, 1e-12),
            (self.max_load - load) / max(self.max_load, 1e-12),
        )
        return min(margins)


def full_window(lut: Lut) -> SlewLoadWindow:
    """The unrestricted window covering the whole characterized grid."""
    return SlewLoadWindow(
        min_slew=float(lut.index_1[0]),
        max_slew=float(lut.index_1[-1]),
        min_load=float(lut.index_2[0]),
        max_load=float(lut.index_2[-1]),
    )


def pin_equivalent_sigma(pin: Pin) -> Lut:
    """Maximum equivalent sigma LUT of an output pin (worst arc/table)."""
    tables = [table for arc in pin.timing for table in arc.sigma_tables()]
    if not tables:
        raise TuningError(
            f"pin {pin.name} has no sigma tables — restriction needs a "
            "statistical library"
        )
    return Lut.elementwise_max(tables)


def window_from_rectangle(lut: Lut, rectangle: Rectangle) -> SlewLoadWindow:
    """Map rectangle index coordinates onto the LUT's physical axes."""
    return SlewLoadWindow(
        min_slew=float(lut.index_1[rectangle.row_lo]),
        max_slew=float(lut.index_1[rectangle.row_hi]),
        min_load=float(lut.index_2[rectangle.col_lo]),
        max_load=float(lut.index_2[rectangle.col_hi]),
    )


def restrict_pin(pin: Pin, threshold: float) -> Optional[SlewLoadWindow]:
    """Restrict one output pin against a sigma threshold.

    Returns the allowed window, or ``None`` when no LUT entry is
    acceptable (pin unusable under this tuning).
    """
    if threshold <= 0:
        raise TuningError("sigma threshold must be positive")
    equivalent = pin_equivalent_sigma(pin)
    binary = binarize_at_most(equivalent.values, threshold)
    rectangle = largest_rectangle(binary)
    if rectangle is None:
        return None
    return window_from_rectangle(equivalent, rectangle)


def restrict_cell(cell: Cell, threshold: float) -> Dict[str, Optional[SlewLoadWindow]]:
    """Restrict every output pin of a cell; see :func:`restrict_pin`."""
    return {
        pin.name: restrict_pin(pin, threshold)
        for pin in cell.output_pins()
    }
