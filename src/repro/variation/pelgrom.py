"""Pelgrom mismatch model (paper ref. [14]).

Pelgrom's law states that the standard deviation of the mismatch of a
device parameter between two identically drawn transistors scales with
the inverse square root of the gate area::

    sigma(d_param) = A_param / sqrt(W * L)

This is the physical origin of the observation the tuning method
exploits (paper Sec. VI.A, Fig. 4): *cells which make use of larger
transistors have a lower local mismatch variation*, so high drive
strengths present lower, flatter sigma surfaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import VariationError


@dataclass(frozen=True)
class PelgromModel:
    """Mismatch coefficients of the 40 nm surrogate process."""

    #: Threshold-voltage matching coefficient (V * um).  ~3 mV*um is in
    #: the published range for a 40 nm bulk process (2-3.5 mV*um).
    a_vth: float = 0.0031
    #: Relative current-factor (beta) matching coefficient (um).
    a_beta: float = 0.008

    def sigma_vth(self, width: float, length: float) -> float:
        """Sigma of the threshold-voltage mismatch of one device (V)."""
        self._check_geometry(width, length)
        return self.a_vth / math.sqrt(width * length)

    def sigma_beta_rel(self, width: float, length: float) -> float:
        """Sigma of the *relative* current-factor mismatch (unitless)."""
        self._check_geometry(width, length)
        return self.a_beta / math.sqrt(width * length)

    def sigma_vth_stack(self, width: float, length: float, stack: int) -> float:
        """Sigma of the average vth over a series stack of ``stack`` devices.

        The effective threshold of a stack is approximately the mean of
        the device thresholds; averaging ``stack`` independent samples
        divides the sigma by ``sqrt(stack)``.
        """
        if stack < 1:
            raise VariationError(f"stack must be >= 1, got {stack}")
        return self.sigma_vth(width, length) / math.sqrt(stack)

    def sigma_beta_rel_stack(self, width: float, length: float, stack: int) -> float:
        """Sigma of the relative beta of a series stack (see above)."""
        if stack < 1:
            raise VariationError(f"stack must be >= 1, got {stack}")
        return self.sigma_beta_rel(width, length) / math.sqrt(stack)

    @staticmethod
    def _check_geometry(width: float, length: float) -> None:
        if width <= 0 or length <= 0:
            raise VariationError(
                f"device geometry must be positive, got W={width}, L={length}"
            )
