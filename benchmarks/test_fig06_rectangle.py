"""Bench: Fig. 6 — largest-rectangle extraction (Algorithm 1)."""

from conftest import show

from repro.experiments import fig06_rectangle


def test_fig06_rectangle(benchmark, context):
    result = benchmark.pedantic(
        fig06_rectangle.run, args=(context,), rounds=1, iterations=1
    )
    show(result)
    # the rectangle is non-empty and sits inside the binary-one region
    assert "optimized == literal" in result.notes
    marked = [row for row in result.rows if "#" in row["in_rect"]]
    assert marked
    for row in marked:
        for flag, bit in zip(row["in_rect"], row["binary_row"]):
            if flag == "#":
                assert bit == "1"
