"""Pelgrom mismatch law."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VariationError
from repro.variation.pelgrom import PelgromModel


class TestPelgromLaw:
    def test_sigma_scales_inverse_sqrt_area(self):
        model = PelgromModel()
        small = model.sigma_vth(0.12, 0.04)
        big = model.sigma_vth(0.48, 0.04)  # 4x the area
        assert small / big == pytest.approx(2.0)

    def test_larger_devices_match_better(self):
        """The observation paper Fig. 4 is built on (ref [14])."""
        model = PelgromModel()
        sigmas = [model.sigma_vth(0.12 * s, 0.04) for s in (1, 2, 4, 8, 16, 32)]
        assert sigmas == sorted(sigmas, reverse=True)

    def test_absolute_magnitude_realistic_for_40nm(self):
        # a unit 40 nm device should sit in the tens-of-mV range
        sigma = PelgromModel().sigma_vth(0.12, 0.04)
        assert 0.01 < sigma < 0.1

    def test_beta_sigma_relative(self):
        model = PelgromModel()
        assert model.sigma_beta_rel(0.12, 0.04) == pytest.approx(
            model.a_beta / math.sqrt(0.12 * 0.04)
        )

    @given(st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_stack_averaging_divides_by_sqrt_stack(self, stack):
        model = PelgromModel()
        single = model.sigma_vth(0.12, 0.04)
        stacked = model.sigma_vth_stack(0.12, 0.04, stack)
        assert stacked == pytest.approx(single / math.sqrt(stack))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(VariationError):
            PelgromModel().sigma_vth(0.0, 0.04)
        with pytest.raises(VariationError):
            PelgromModel().sigma_vth(0.12, -1.0)

    def test_invalid_stack_rejected(self):
        with pytest.raises(VariationError):
            PelgromModel().sigma_vth_stack(0.12, 0.04, 0)
