"""Human-readable timing/variation reports (tool-style text output)."""

from __future__ import annotations

from typing import List, Optional

from repro.liberty.model import Library
from repro.sta.engine import TimingResult
from repro.sta.paths import TimingPath, extract_worst_paths, worst_path
from repro.sta.statistics import design_statistics, path_statistics


def format_path(path: TimingPath) -> str:
    """One path in the classic report_timing layout."""
    lines = [
        f"Path to {path.endpoint.name} ({path.endpoint.kind})",
        f"{'cell':<24} {'arc':<10} {'delay':>8} {'slew':>8} {'load':>9}  arrival",
    ]
    arrival = 0.0
    for step in path.steps:
        arrival += step.delay
        arc = f"{step.related_pin}->{step.out_pin}"
        lines.append(
            f"{step.cell_name:<24} {arc:<10} {step.delay:8.4f} {step.slew:8.4f} "
            f"{step.load:9.5f}  {arrival:8.4f}"
        )
    lines.append(
        f"depth {path.depth} cells; arrival {path.arrival:.4f} ns, "
        f"required {path.required:.4f} ns, slack {path.slack:+.4f} ns"
    )
    return "\n".join(lines)


def timing_summary(result: TimingResult) -> str:
    """WNS/TNS one-liner plus the most critical path."""
    lines = [
        f"clock {result.clock_period:.3f} ns (effective "
        f"{result.effective_period:.3f} ns after {result.guard_band:.3f} ns guard band)",
        f"endpoints {len(result.graph.endpoints)}, WNS {result.wns:+.4f} ns, "
        f"TNS {result.tns:+.3f} ns, timing {'MET' if result.met else 'VIOLATED'}",
        "",
        format_path(worst_path(result)),
    ]
    return "\n".join(lines)


def variation_summary(
    result: TimingResult,
    statistical_library: Library,
    rho: float = 0.0,
    paths: Optional[List[TimingPath]] = None,
) -> str:
    """Design-level sigma report (eq. 11 roll-up)."""
    chosen = paths if paths is not None else extract_worst_paths(result)
    design = design_statistics(chosen, statistical_library, rho=rho)
    worst = max(design.path_stats, key=lambda p: p.three_sigma)
    lines = [
        f"design sigma {design.sigma:.4f} ns over {design.n_paths} endpoint paths "
        f"(rho={rho:g})",
        f"worst path mu+3sigma {worst.three_sigma:.4f} ns "
        f"(mu {worst.mean:.4f}, sigma {worst.sigma:.4f}, depth {worst.depth})",
    ]
    return "\n".join(lines)


def path_table(
    paths: List[TimingPath], library: Library, rho: float = 0.0
) -> str:
    """Depth/mean/sigma table over paths (Figs. 13-14 data)."""
    lines = [f"{'endpoint':<40} {'depth':>5} {'mean':>9} {'sigma':>9} {'mu+3s':>9}"]
    for path in paths:
        stats = path_statistics(path, library, rho=rho)
        lines.append(
            f"{path.endpoint.name:<40} {stats.depth:>5} {stats.mean:9.4f} "
            f"{stats.sigma:9.4f} {stats.three_sigma:9.4f}"
        )
    return "\n".join(lines)
