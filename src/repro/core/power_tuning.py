"""Power-targeted library tuning (the paper's Sec. III extension).

"The methods which will be described can also be adjusted to measure
the influence of local variation on other properties, such as
transition power."  This module performs that adjustment: the same
two-stage tuning — threshold, binary LUT, largest rectangle, per-pin
window — driven by the *switching-energy sigma* tables a power-enabled
characterization produces (``Characterizer(include_power=True)``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.binary_lut import binarize_at_most
from repro.core.rectangle import largest_rectangle
from repro.core.restriction import SlewLoadWindow, window_from_rectangle
from repro.core.tuner import WindowMap
from repro.errors import TuningError
from repro.liberty.model import Library, Lut, Pin


def pin_equivalent_power_sigma(pin: Pin) -> Lut:
    """Worst-case energy-sigma LUT of an output pin (max over arcs)."""
    tables = [table for arc in pin.timing for table in arc.power_sigma_tables()]
    if not tables:
        raise TuningError(
            f"pin {pin.name} has no energy-sigma tables — characterize with "
            "Characterizer(include_power=True)"
        )
    return Lut.elementwise_max(tables)


def restrict_pin_power(pin: Pin, ceiling: float) -> Optional[SlewLoadWindow]:
    """Window of acceptable energy sigma, or None when nothing fits."""
    if ceiling <= 0:
        raise TuningError("power-sigma ceiling must be positive")
    equivalent = pin_equivalent_power_sigma(pin)
    binary = binarize_at_most(equivalent.values, ceiling)
    rectangle = largest_rectangle(binary)
    if rectangle is None:
        return None
    return window_from_rectangle(equivalent, rectangle)


def power_sigma_windows(library: Library, ceiling: float) -> WindowMap:
    """Tune the whole library against an energy-sigma ceiling (pJ)."""
    windows: WindowMap = {}
    for cell in library:
        for pin in cell.output_pins():
            windows[(cell.name, pin.name)] = restrict_pin_power(pin, ceiling)
    if not windows:
        raise TuningError(f"library {library.name} has no output pins to tune")
    return windows


def window_overlap(
    a: Optional[SlewLoadWindow], b: Optional[SlewLoadWindow]
) -> float:
    """Jaccard overlap of two windows in (slew x load) area.

    1.0 = identical, 0.0 = disjoint (or one side excluded).
    """
    if a is None or b is None:
        return 1.0 if a is b else 0.0
    slew_lo = max(a.min_slew, b.min_slew)
    slew_hi = min(a.max_slew, b.max_slew)
    load_lo = max(a.min_load, b.min_load)
    load_hi = min(a.max_load, b.max_load)
    inter = max(0.0, slew_hi - slew_lo) * max(0.0, load_hi - load_lo)
    area_a = (a.max_slew - a.min_slew) * (a.max_load - a.min_load)
    area_b = (b.max_slew - b.min_slew) * (b.max_load - b.min_load)
    union = area_a + area_b - inter
    if union <= 0:
        return 1.0  # both degenerate
    return inter / union


def compare_window_maps(
    delay_windows: WindowMap, power_windows: WindowMap
) -> Dict[Tuple[str, str], float]:
    """Per-pin overlap between delay-driven and power-driven tuning.

    Both metrics cut the high-slew/high-load corner, but not
    identically: delay sigma is dominated by the R*C sensitivity,
    energy sigma by the short-circuit (slew) term — so the windows
    correlate without coinciding.
    """
    if set(delay_windows) != set(power_windows):
        raise TuningError("window maps cover different pins")
    return {
        key: window_overlap(delay_windows[key], power_windows[key])
        for key in delay_windows
    }
