"""Bilinear interpolation (paper eqs. 2-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LutError
from repro.liberty.lut import (
    bilinear_interpolate,
    bilinear_interpolate_many,
    bilinear_interpolate_paper,
)
from repro.liberty.model import Lut


def make_lut(values=None, index_1=(0.1, 0.2, 0.4), index_2=(0.001, 0.002, 0.004)):
    if values is None:
        values = np.arange(9, dtype=float).reshape(3, 3)
    return Lut(index_1, index_2, values)


class TestExactness:
    def test_grid_points_are_exact(self):
        lut = make_lut()
        for i, slew in enumerate(lut.index_1):
            for j, load in enumerate(lut.index_2):
                assert bilinear_interpolate(lut, slew, load) == pytest.approx(
                    lut.values[i, j]
                )

    def test_midpoint_averages_cell_corners(self):
        lut = make_lut()
        slew = 0.5 * (lut.index_1[0] + lut.index_1[1])
        load = 0.5 * (lut.index_2[0] + lut.index_2[1])
        expected = lut.values[:2, :2].mean()
        assert bilinear_interpolate(lut, slew, load) == pytest.approx(expected)

    def test_linear_function_reproduced_exactly(self):
        # bilinear interpolation is exact for f = a*slew + b*load + c
        index_1 = np.array([0.1, 0.3, 0.9])
        index_2 = np.array([0.001, 0.005, 0.02])
        values = 2.0 * index_1[:, None] + 30.0 * index_2[None, :] + 0.5
        lut = Lut(index_1, index_2, values)
        for slew, load in [(0.2, 0.003), (0.77, 0.011), (0.1, 0.02)]:
            assert bilinear_interpolate(lut, slew, load) == pytest.approx(
                2.0 * slew + 30.0 * load + 0.5
            )


class TestClamping:
    def test_clamps_below_grid(self):
        lut = make_lut()
        assert bilinear_interpolate(lut, 0.0, 0.0) == pytest.approx(lut.values[0, 0])

    def test_clamps_above_grid(self):
        lut = make_lut()
        assert bilinear_interpolate(lut, 99.0, 99.0) == pytest.approx(lut.values[-1, -1])

    def test_clamps_one_axis_only(self):
        lut = make_lut()
        load = 0.002
        assert bilinear_interpolate(lut, 99.0, load) == pytest.approx(lut.values[-1, 1])


class TestPaperEquations:
    @given(
        slew=st.floats(0.1, 0.4),
        load=st.floats(0.001, 0.004),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_literal_paper_transcription(self, slew, load):
        lut = make_lut(values=np.array([[1.0, 4.0, 2.0], [3.0, 7.0, 5.0], [8.0, 6.0, 9.0]]))
        fast = bilinear_interpolate(lut, slew, load)
        literal = bilinear_interpolate_paper(lut, slew, load)
        assert fast == pytest.approx(literal, rel=1e-12, abs=1e-12)


class TestVectorized:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_for_random_queries(self, seed):
        rng = np.random.default_rng(seed)
        lut = make_lut(values=rng.random((3, 3)) * 5)
        slews = rng.uniform(0.0, 0.6, 17)
        loads = rng.uniform(0.0, 0.006, 17)
        many = bilinear_interpolate_many(lut, slews, loads)
        for k in range(17):
            assert many[k] == pytest.approx(
                bilinear_interpolate(lut, slews[k], loads[k]), rel=1e-12, abs=1e-12
            )

    def test_broadcasting_grid(self):
        lut = make_lut()
        out = bilinear_interpolate_many(
            lut, np.array([[0.1], [0.2]]), np.array([0.001, 0.002])
        )
        assert out.shape == (2, 2)

    def test_monotone_lut_gives_monotone_interpolation(self):
        lut = make_lut()  # arange: increasing in both axes
        low = bilinear_interpolate(lut, 0.15, 0.0015)
        high = bilinear_interpolate(lut, 0.3, 0.003)
        assert high > low


class TestLutValidation:
    def test_rejects_mismatched_shape(self):
        with pytest.raises(LutError):
            Lut((0.1, 0.2), (0.001, 0.002), [[1.0, 2.0]])

    def test_rejects_non_increasing_axis(self):
        with pytest.raises(LutError):
            Lut((0.2, 0.1), (0.001, 0.002), [[1.0, 2.0], [3.0, 4.0]])

    def test_rejects_single_point_axis(self):
        with pytest.raises(LutError):
            Lut((0.1,), (0.001, 0.002), [[1.0, 2.0]])

    def test_elementwise_max(self):
        a = make_lut(values=np.full((3, 3), 1.0))
        b = make_lut(values=np.arange(9, dtype=float).reshape(3, 3))
        combined = Lut.elementwise_max([a, b])
        assert combined.values[0, 0] == 1.0
        assert combined.values[2, 2] == 8.0

    def test_elementwise_max_rejects_mismatched_axes(self):
        a = make_lut()
        b = make_lut(index_1=(0.1, 0.2, 0.5))
        with pytest.raises(LutError):
            Lut.elementwise_max([a, b])
