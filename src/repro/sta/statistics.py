"""Statistical path/design analysis (paper Sec. V).

Each path step's delay distribution is read from the statistical
library: mean from the (mean) delay tables the STA already used, sigma
from the ``sigma_rise``/``sigma_fall`` tables, both bilinearly
interpolated at the step's (input slew, output load) — eqs. (2)-(4).

Convolution along a path (Sec. V.B):

* mean: ``mu_path = sum(mu_cell)``                      (eq. 5)
* general variance with equal pairwise correlation rho  (eq. 9)::

      sigma_path^2 = sum_i sigma_i^2 + rho * sum_{i != j} sigma_i sigma_j

* the paper argues local variations are uncorrelated (rho = 0),
  reducing to ``sigma_path = sqrt(sum sigma_i^2)``      (eq. 10)

Design roll-up over the worst paths per unique endpoint (eq. 11)::

      mu_design = sum(mu_path),  sigma_design = sqrt(sum sigma_path^2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TimingError
from repro.kernels.sta import evaluate_table_groups
from repro.liberty.model import Library, Lut
from repro.sta.paths import PathStep, TimingPath


def _step_sigma_tables(library: Library, step: PathStep) -> Tuple[Lut, ...]:
    """Sigma tables of a step's arc, or raise the standard error."""
    cell = library.cell(step.cell_name)
    arc = cell.pin(step.out_pin).arc_from(step.related_pin)
    tables = arc.sigma_tables()
    if not tables:
        raise TimingError(
            f"cell {step.cell_name} has no sigma tables; statistical analysis "
            "needs the statistical library"
        )
    return tables


def step_sigma(
    library: Library, step: PathStep, kernel: Optional[str] = None
) -> float:
    """Delay sigma of one path step (worst of rise/fall tables)."""
    tables = _step_sigma_tables(library, step)
    (values,) = evaluate_table_groups(
        [tables],
        [np.asarray([step.slew], dtype=float)],
        [np.asarray([step.load], dtype=float)],
        kernel,
    )
    return float(values[0])


def _step_sigmas(
    library: Library, steps: Sequence[PathStep], kernel: Optional[str] = None
) -> Tuple[float, ...]:
    """Sigmas of all steps of one path in one whole-path kernel call."""
    groups: List[Tuple[Lut, ...]] = [
        _step_sigma_tables(library, step) for step in steps
    ]
    values = evaluate_table_groups(
        groups,
        [np.asarray([step.slew], dtype=float) for step in steps],
        [np.asarray([step.load], dtype=float) for step in steps],
        kernel,
    )
    return tuple(float(value[0]) for value in values)


@dataclass(frozen=True)
class PathStatistics:
    """Mean/sigma of one path's delay distribution."""

    mean: float
    sigma: float
    depth: int
    #: Per-step sigmas (for Fig. 14-style mean + 3 sigma plots).
    step_sigmas: tuple

    @property
    def three_sigma(self) -> float:
        """mu + 3 sigma — the paper's robustness view of a path."""
        return self.mean + 3.0 * self.sigma

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline)."""
        return {
            "mean": self.mean,
            "sigma": self.sigma,
            "depth": self.depth,
            "step_sigmas": list(self.step_sigmas),
        }

    @staticmethod
    def from_payload(payload: dict) -> "PathStatistics":
        """Rebuild statistics stored with :meth:`to_payload`."""
        return PathStatistics(
            mean=float(payload["mean"]),
            sigma=float(payload["sigma"]),
            depth=int(payload["depth"]),
            step_sigmas=tuple(float(s) for s in payload["step_sigmas"]),
        )


def path_sigma_correlated(step_sigmas: Sequence[float], rho: float) -> float:
    """Eq. (9): path sigma under equal pairwise correlation ``rho``."""
    if not -1.0 <= rho <= 1.0:
        raise TimingError(f"correlation must be in [-1, 1], got {rho}")
    sigmas = np.asarray(step_sigmas, dtype=float)
    variance = float((sigmas**2).sum())
    if rho != 0.0:
        cross = float(sigmas.sum()) ** 2 - float((sigmas**2).sum())
        variance += rho * cross
    if variance < 0:
        raise TimingError("negative path variance (rho too negative)")
    return float(np.sqrt(variance))


def path_statistics(
    path: TimingPath,
    library: Library,
    rho: float = 0.0,
    kernel: Optional[str] = None,
) -> PathStatistics:
    """Mean and sigma of a path (eqs. 5, 9/10)."""
    sigmas = _step_sigmas(library, path.steps, kernel)
    mean = float(sum(step.delay for step in path.steps))
    return PathStatistics(
        mean=mean,
        sigma=path_sigma_correlated(sigmas, rho),
        depth=path.depth,
        step_sigmas=sigmas,
    )


@dataclass(frozen=True)
class DesignStatistics:
    """Design-level roll-up over worst paths per endpoint (eq. 11)."""

    mean: float
    sigma: float
    n_paths: int
    path_stats: tuple

    @property
    def worst_three_sigma(self) -> float:
        """Worst per-path mu + 3 sigma across the design (Fig. 14)."""
        return max(p.three_sigma for p in self.path_stats)

    def to_payload(self) -> dict:
        """JSON-serializable rendering (artifact pipeline)."""
        return {
            "mean": self.mean,
            "sigma": self.sigma,
            "n_paths": self.n_paths,
            "path_stats": [p.to_payload() for p in self.path_stats],
        }

    @staticmethod
    def from_payload(payload: dict) -> "DesignStatistics":
        """Rebuild statistics stored with :meth:`to_payload`."""
        return DesignStatistics(
            mean=float(payload["mean"]),
            sigma=float(payload["sigma"]),
            n_paths=int(payload["n_paths"]),
            path_stats=tuple(
                PathStatistics.from_payload(p) for p in payload["path_stats"]
            ),
        )


def design_statistics(
    paths: Sequence[TimingPath],
    library: Library,
    rho: float = 0.0,
    kernel: Optional[str] = None,
) -> DesignStatistics:
    """Eq. (11) over the given worst paths."""
    if not paths:
        raise TimingError("design statistics need at least one path")
    stats = tuple(
        path_statistics(path, library, rho=rho, kernel=kernel) for path in paths
    )
    mean = float(sum(p.mean for p in stats))
    sigma = float(np.sqrt(sum(p.sigma**2 for p in stats)))
    return DesignStatistics(
        mean=mean, sigma=sigma, n_paths=len(stats), path_stats=stats
    )
