"""Fig. 2 — statistical-library construction (paper Sec. IV).

Runs the literal process: N Monte-Carlo libraries, per-entry collection
into a temporary table, mean/sigma extraction — and verifies it against
the vectorized path on a sample of cells/entries.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.statlib.builder import build_statistical_library


def run(
    context: ExperimentContext, n_samples: int = 20, n_cells: int = 4, seed: int = 2
) -> ExperimentResult:
    """Combine N sample libraries for a handful of cells and report the
    marked-entry walk of Fig. 2."""
    flow = context.flow
    specs = [
        s for s in flow.specs
        if s.name in ("INV_1", "INV_8", "ND2_2", "NR2_2", "ADDF_4")
    ][:n_cells]
    characterizer = flow.characterizer
    libraries = characterizer.sample_libraries(specs, n_samples=n_samples, seed=seed)
    statistical = build_statistical_library(libraries)
    direct = characterizer.statistical_library(specs, n_samples=n_samples, seed=seed)

    rows = []
    max_error = 0.0
    for spec in specs:
        arc = statistical.cell(spec.name).output_pins()[0].timing[0]
        entries = np.array([
            lib.cell(spec.name).output_pins()[0].timing[0].cell_fall.values[0, 0]
            for lib in libraries
        ])
        direct_arc = direct.cell(spec.name).output_pins()[0].timing[0]
        max_error = max(
            max_error,
            float(np.abs(direct_arc.sigma_fall.values - arc.sigma_fall.values).max()),
        )
        rows.append({
            "cell": spec.name,
            "entry_mean": float(entries.mean()),
            "entry_sigma": float(entries.std(ddof=1)),
            "lib_mean[0,0]": float(arc.cell_fall.values[0, 0]),
            "lib_sigma[0,0]": float(arc.sigma_fall.values[0, 0]),
            "n_libs": n_samples,
        })
    return ExperimentResult(
        experiment_id="fig02",
        title="Statistical library: per-entry mean/sigma over N MC libraries",
        rows=rows,
        notes=f"combine-vs-direct max |dsigma| = {max_error:.2e} (must be ~0)",
    )
