"""Barrel shifter: log-depth layers of 2:1 muxes."""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder
from repro.netlist.model import Netlist


def barrel_shifter(
    builder: NetlistBuilder, data: Bus, amount: Bus, left: bool = True
) -> Bus:
    """Shift ``data`` by the binary ``amount`` (zero fill).

    ``amount`` needs ``ceil(log2(width))`` bits; each select bit adds
    one mux layer shifting by ``2^k``.
    """
    width = len(data)
    if (1 << len(amount)) < width:
        raise NetlistError(
            f"{len(amount)} shift bits cannot address a {width}-bit word"
        )
    zero = builder.tie(0)
    current = list(data)
    with builder.scope(builder.fresh("bsh")):
        for k, select in enumerate(amount):
            step = 1 << k
            shifted: Bus = []
            for i in range(width):
                source = i - step if left else i + step
                shifted.append(current[source] if 0 <= source < width else zero)
            current = builder.mux_word(current, shifted, select)
    return current


def build_barrel_shifter(width: int, left: bool = True, name: str = "") -> Netlist:
    """Standalone shifter design with ports d, sh, q."""
    shift_bits = max(1, (width - 1).bit_length())
    builder = NetlistBuilder(name or f"shifter{width}")
    data = builder.input_bus("d", width)
    amount = builder.input_bus("sh", shift_bits)
    builder.output_bus("q", barrel_shifter(builder, data, amount, left=left))
    builder.netlist.validate()
    return builder.netlist
