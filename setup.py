"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine has no network access and no
``wheel`` module, so the PEP 660 editable path cannot build; this shim
lets pip fall back to the classic ``setup.py develop`` editable
install (``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
