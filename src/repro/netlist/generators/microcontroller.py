"""The ~20k-gate microcontroller evaluation design.

Stands in for the paper's test design ("a microcontroller design ...
with a 32-bit CPU, AHB bus, 32KB SRAM, and a low gate count (20k
gates)", Sec. VII).  The SRAM itself is external in the paper (macro,
not standard cells); here memory read data enters through ports, so
the synthesized gate count covers the same things the paper's does:
CPU datapath, bus fabric and peripherals.

Blocks:

* 3-stage pipeline: fetch (PC, increment, branch), decode (IR,
  PLA-style decoder, random control network + state register),
  execute/writeback (register file, ALU with shifter, array
  multiplier, bus interface);
* AHB-like bus: address decoder, 8-slave read-data mux;
* peripherals: timers, UART transmitters, GPIO.

Everything is deterministic given ``MicrocontrollerParams.seed``; the
default parameters land near 20k gate instances (the exact count is
pinned by a regression test).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.builder import Bus, NetlistBuilder
from repro.netlist.generators.alu import Alu
from repro.netlist.generators.control import decode_rom, random_logic
from repro.netlist.generators.multiplier import array_multiplier
from repro.netlist.generators.peripherals import gpio_block, timer, uart_tx
from repro.netlist.generators.regfile import register_file
from repro.netlist.model import Netlist


@dataclass(frozen=True)
class MicrocontrollerParams:
    """Size knobs of the generated design."""

    #: Datapath width (the paper's CPU is 32-bit).
    width: int = 32
    #: log2 of the register-file depth.
    regfile_bits: int = 5
    #: Array-multiplier operand width (sets the deepest paths).
    mult_width: int = 24
    #: Number of peripheral timers.
    n_timers: int = 8
    #: Timer counter width.
    timer_width: int = 24
    #: Gates in the random control network.
    control_gates: int = 16500
    #: Observable status lines tapped from the control network (keeps
    #: the network alive through dead-logic pruning, like the DFT/debug
    #: observability registers of a real controller).
    status_width: int = 256
    #: Control lines produced by the PLA-style decoder.
    decode_outputs: int = 32
    #: UART transmitters.
    n_uarts: int = 2
    #: GPIO width.
    gpio_width: int = 16
    #: Extra bus-return register stages before writeback (1 = the
    #: paper's 3-stage organization; deeper values trade latency for
    #: shorter memory-return paths, the family's pipeline axis).
    pipeline_depth: int = 1
    #: Seed for the random control structures.
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.width < 8:
            raise NetlistError("width must be >= 8")
        if self.pipeline_depth < 1:
            raise NetlistError("pipeline_depth must be >= 1")
        if self.mult_width > self.width:
            raise NetlistError("mult_width cannot exceed the datapath width")
        if 3 + 3 * self.regfile_bits > self.width:
            raise NetlistError(
                "instruction word too narrow: opcode (3) plus three "
                f"{self.regfile_bits}-bit register fields exceed width {self.width}"
            )


def build_microcontroller(
    params: MicrocontrollerParams = MicrocontrollerParams(), name: str = "microcontroller"
) -> Netlist:
    """Generate the evaluation design; validated and pruned."""
    p = params
    b = NetlistBuilder(name)
    b.clock("clk")
    rst_n = b.input("rst_n")
    width = p.width

    # External interfaces ------------------------------------------------
    mem_rdata = b.input_bus("mem_rdata", width)
    irq = b.input_bus("irq", 8)
    pins_in = b.input_bus("pins_in", p.gpio_width)

    # Fetch stage ---------------------------------------------------------
    with b.scope("fetch"):
        pc_nets = [b.fresh("pc") for _ in range(width)]
        pc_plus = b.incrementer(pc_nets)

    # Decode stage ----------------------------------------------------
    with b.scope("decode"):
        ir = b.register(mem_rdata, reset_n=rst_n)
        opcode = ir[width - 6 :]
        controls = decode_rom(b, opcode, p.decode_outputs, seed=p.seed + 1)
        state_bits = 8
        state_nets = [b.fresh("st") for _ in range(state_bits)]
        control_inputs = list(ir) + list(state_nets) + list(irq) + controls
        random_outs = random_logic(
            b,
            control_inputs,
            n_gates=p.control_gates,
            n_outputs=state_bits + 16 + p.status_width,
            seed=p.seed + 2,
        )
        for d, q in zip(random_outs[:state_bits], state_nets):
            b.dff(d, reset_n=rst_n, out=q)
        misc_controls = random_outs[state_bits : state_bits + 16]
        status_reg = b.register(
            random_outs[state_bits + 16 :], reset_n=rst_n
        )

        alu_op = ir[:3]
        rs1 = ir[3 : 3 + p.regfile_bits]
        rs2 = ir[3 + p.regfile_bits : 3 + 2 * p.regfile_bits]
        rd = ir[3 + 2 * p.regfile_bits : 3 + 3 * p.regfile_bits]
        imm_lo = ir[width // 2 :]
        # sign-extend the immediate to the full width
        imm = list(imm_lo) + [imm_lo[-1]] * (width - len(imm_lo))

        reg_write = controls[0]
        use_imm = controls[1]
        branch = controls[2]
        mem_to_reg = controls[3]
        bus_write = controls[4]
        timer_enable = controls[5]
        uart_load = controls[6]
        gpio_write = controls[7]

    # Execute stage -----------------------------------------------------
    with b.scope("execute"):
        writeback_nets = [b.fresh("wb") for _ in range(width)]
        rf = register_file(
            b,
            write_data=writeback_nets,
            write_address=rd,
            write_enable=reg_write,
            read_addresses=[rs1, rs2],
            reset_n=rst_n,
        )
        operand_a, operand_b_reg = rf.read_data
        operand_b = b.mux_word(operand_b_reg, imm, use_imm)

        alu = Alu(b, width).emit(operand_a, operand_b, alu_op)

        product = array_multiplier(
            b, operand_a[: p.mult_width], operand_b[: p.mult_width]
        )
        product_reg = b.register(product[: width], reset_n=rst_n)

    # Bus fabric (AHB-like) ----------------------------------------------
    with b.scope("bus"):
        address = alu.result
        slave_select = b.decoder(address[width - 3 :])
        compare = operand_b_reg[: p.timer_width]
        timers = [
            timer(
                b,
                p.timer_width,
                compare,
                enable=b.and_(timer_enable, slave_select[1 + (t % 4)]),
                reset_n=rst_n,
            )
            for t in range(p.n_timers)
        ]
        serial_outs = [
            uart_tx(b, operand_b_reg[: p.gpio_width], load=uart_load, reset_n=rst_n)
            for _ in range(p.n_uarts)
        ]
        gpio_read = gpio_block(
            b, operand_b_reg[: p.gpio_width], write=gpio_write, pins_in=pins_in,
            reset_n=rst_n,
        )

        def pad(bus: Bus) -> Bus:
            zero = b.tie(0)
            return list(bus) + [zero] * (width - len(bus))

        slave_words = [
            mem_rdata,
            pad(timers[0].count),
            pad(timers[1 % p.n_timers].count),
            pad(gpio_read),
            pad(list(irq)),
            pad(timers[2 % p.n_timers].count),
            pad(timers[3 % p.n_timers].count),
            pad(serial_outs + misc_controls[: width // 4]),
        ]
        bus_rdata = b.mux_tree(slave_words, address[width - 3 :])

    # Writeback -----------------------------------------------------------
    with b.scope("writeback"):
        for _ in range(p.pipeline_depth - 1):
            bus_rdata = b.register(bus_rdata, reset_n=rst_n)
        exec_result = b.mux_word(alu.result, product_reg, alu_op[2])
        for i in range(width):
            b.mux2(exec_result[i], bus_rdata[i], mem_to_reg, out=writeback_nets[i])

    # Fetch stage registers (close the PC loop) --------------------------
    with b.scope("fetch"):
        branch_target, _carry = b.ripple_adder(pc_nets, imm)
        take_branch = b.and_(branch, alu.zero)
        next_pc = b.mux_word(pc_plus, branch_target, take_branch)
        for d, q in zip(next_pc, pc_nets):
            b.dff(d, reset_n=rst_n, out=q)

    # Outputs -------------------------------------------------------------
    b.output_bus("mem_addr", pc_nets)
    b.output_bus("bus_addr", address)
    b.output_bus("bus_wdata", operand_b_reg)
    b.output("bus_write", bus_write)
    for i, serial in enumerate(serial_outs):
        b.output(f"uart_tx{i}", serial)
    b.output_bus("timer_match", [t.match for t in timers])
    with b.scope("status"):
        folded = [
            b.xnor(status_reg[i], status_reg[i + len(status_reg) // 2])
            for i in range(len(status_reg) // 2)
        ]
        b.output_bus("status", folded)

    netlist = b.netlist
    netlist.prune_dangling()
    netlist.validate()
    return netlist
