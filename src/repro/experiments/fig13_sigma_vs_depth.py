"""Fig. 13 — path sigma versus path depth.

"There is no direct relation between the path depth and the local
variation of a path but instead, the local variation of a data-path is
dictated by the used cells and their properties."  We quantify that as
a substantial per-depth sigma spread relative to the overall range.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult


def run(
    context: ExperimentContext,
    method: str = "sigma_ceiling",
    parameter: float = 0.03,
    period: Optional[float] = None,
) -> ExperimentResult:
    """Build this experiment's rows (see the module docstring)."""
    flow = context.flow
    clock = period if period is not None else context.high_performance_period
    rows: List[dict] = []
    spread_stats = {}
    for label, run_at in (
        ("baseline", flow.baseline(clock)),
        ("tuned", flow.tuned(clock, method, parameter)),
    ):
        by_depth: Dict[int, List[float]] = {}
        for stats in run_at.stats.path_stats:
            by_depth.setdefault(stats.depth, []).append(stats.sigma)
        for depth in sorted(by_depth):
            sigmas = by_depth[depth]
            rows.append({
                "design": label,
                "depth": depth,
                "n_paths": len(sigmas),
                "sigma_min": float(np.min(sigmas)),
                "sigma_mean": float(np.mean(sigmas)),
                "sigma_max": float(np.max(sigmas)),
            })
        all_sigmas = [s.sigma for s in run_at.stats.path_stats]
        within = [
            max(v) - min(v) for v in by_depth.values() if len(v) >= 3
        ]
        spread_stats[label] = (
            max(within) / (max(all_sigmas) - min(all_sigmas))
            if within and max(all_sigmas) > min(all_sigmas)
            else 0.0
        )
    return ExperimentResult(
        experiment_id="fig13",
        title=f"Path sigma vs depth at {clock:g} ns",
        rows=rows,
        notes=(
            "same-depth sigma spread / overall sigma range: "
            + ", ".join(f"{k}: {v:.0%}" for k, v in spread_stats.items())
            + " — depth alone does not determine sigma"
        ),
    )
