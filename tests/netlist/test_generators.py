"""Generator correctness: every block is verified bit-for-bit against
Python arithmetic via the functional simulator."""

import random

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.generators.alu import build_alu, reference_alu
from repro.netlist.generators.arithmetic import (
    build_carry_select_adder,
    build_ripple_adder,
    less_than,
)
from repro.netlist.generators.control import decode_rom, random_logic
from repro.netlist.generators.multiplier import build_array_multiplier
from repro.netlist.generators.peripherals import timer, uart_tx
from repro.netlist.generators.regfile import register_file
from repro.netlist.generators.shifter import build_barrel_shifter
from repro.netlist.simulate import (
    bus_value,
    int_to_bus_inputs,
    simulate,
    simulate_sequence,
)

random.seed(20140301)


def run(netlist, **bus_values):
    inputs = {}
    for name, (width, value) in bus_values.items():
        if width == 1:
            inputs[name] = bool(value)
        else:
            inputs.update(int_to_bus_inputs(name, width, value))
    for port in netlist.input_ports():
        inputs.setdefault(port, port == "tie1")
    return simulate(netlist, inputs)


def out_value(outputs, name, width):
    return sum(1 << i for i in range(width) if outputs[f"{name}[{i}]"])


class TestAdders:
    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_ripple_adder(self, width):
        netlist = build_ripple_adder(width)
        for _ in range(25):
            a, b = random.randrange(1 << width), random.randrange(1 << width)
            out = run(netlist, a=(width, a), b=(width, b))
            total = out_value(out, "s", width) + ((1 << width) if out["co"] else 0)
            assert total == a + b

    @pytest.mark.parametrize("block", [2, 3, 4])
    def test_carry_select_adder(self, block):
        width = 12
        netlist = build_carry_select_adder(width, block=block)
        for _ in range(25):
            a, b = random.randrange(1 << width), random.randrange(1 << width)
            out = run(netlist, a=(width, a), b=(width, b))
            total = out_value(out, "s", width) + ((1 << width) if out["co"] else 0)
            assert total == a + b

    def test_carry_select_smaller_depth_than_ripple(self):
        width = 16
        ripple = build_ripple_adder(width)
        select = build_carry_select_adder(width, block=4)
        assert max(select.levelize().values()) < max(ripple.levelize().values())

    def test_subtractor_and_less_than(self):
        builder = NetlistBuilder("cmp")
        a = builder.input_bus("a", 6)
        b = builder.input_bus("b", 6)
        builder.output("lt", less_than(builder, a, b))
        netlist = builder.netlist
        for _ in range(30):
            x, y = random.randrange(64), random.randrange(64)
            out = run(netlist, a=(6, x), b=(6, y))
            assert out["lt"] == (x < y)


class TestMultiplier:
    @pytest.mark.parametrize("wa, wb", [(4, 4), (6, 3), (8, 8)])
    def test_products(self, wa, wb):
        netlist = build_array_multiplier(wa, wb)
        for _ in range(25):
            a, b = random.randrange(1 << wa), random.randrange(1 << wb)
            out = run(netlist, a=(wa, a), b=(wb, b))
            assert out_value(out, "p", wa + wb) == a * b

    def test_depth_scales_with_width(self):
        small = build_array_multiplier(4, 4)
        large = build_array_multiplier(8, 8)
        assert max(large.levelize().values()) > max(small.levelize().values())


class TestShifter:
    @pytest.mark.parametrize("left", [True, False])
    def test_shift(self, left):
        width = 16
        netlist = build_barrel_shifter(width, left=left)
        for _ in range(30):
            d = random.randrange(1 << width)
            sh = random.randrange(width)
            out = run(netlist, d=(width, d), sh=(4, sh))
            expected = (d << sh if left else d >> sh) & ((1 << width) - 1)
            assert out_value(out, "q", width) == expected


class TestAlu:
    def test_against_reference(self):
        width = 8
        netlist = build_alu(width)
        for op in range(8):
            for _ in range(12):
                a, b = random.randrange(256), random.randrange(256)
                out = run(netlist, a=(width, a), b=(width, b), op=(3, op))
                got = out_value(out, "r", width)
                assert got == reference_alu(op, a, b, width), (op, a, b)

    def test_zero_flag(self):
        netlist = build_alu(8)
        out = run(netlist, a=(8, 5), b=(8, 5), op=(3, 1))  # 5 - 5
        assert out["zero"]
        out = run(netlist, a=(8, 5), b=(8, 4), op=(3, 1))
        assert not out["zero"]

    def test_carry_flag_on_add(self):
        netlist = build_alu(8)
        out = run(netlist, a=(8, 200), b=(8, 100), op=(3, 0))
        assert out["carry"]


class TestRegisterFile:
    def test_write_then_read(self):
        builder = NetlistBuilder("rf")
        builder.clock()
        wd = builder.input_bus("wd", 8)
        wa = builder.input_bus("wa", 2)
        we = builder.input("we")
        ra = builder.input_bus("ra", 2)
        ports = register_file(builder, wd, wa, we, [ra])
        builder.output_bus("rd", ports.read_data[0])
        netlist = builder.netlist
        netlist.validate()

        def cycle(wa_v, wd_v, we_v, ra_v):
            inputs = {
                **int_to_bus_inputs("wd", 8, wd_v),
                **int_to_bus_inputs("wa", 2, wa_v),
                **int_to_bus_inputs("ra", 2, ra_v),
                "we": bool(we_v), "clk": False,
            }
            for port in netlist.input_ports():
                inputs.setdefault(port, False)
            return inputs

        sequence = [
            cycle(1, 0xAB, 1, 1),  # write r1 = 0xAB
            cycle(2, 0xCD, 1, 1),  # write r2, read r1
            cycle(3, 0xEE, 0, 2),  # write disabled, read r2
            cycle(0, 0x00, 0, 3),  # read r3 (never written)
        ]
        observed = simulate_sequence(netlist, sequence)
        values = [
            sum(1 << i for i in range(8) if o[f"rd[{i}]"]) for o in observed
        ]
        assert values[1] == 0xAB
        assert values[2] == 0xCD
        assert values[3] == 0x00


class TestControlGenerators:
    def test_random_logic_deterministic(self):
        for _ in range(2):
            builders = [NetlistBuilder("r") for _ in range(2)]
            netlists = []
            for b in builders:
                ins = b.input_bus("x", 8)
                outs = random_logic(b, ins, n_gates=120, n_outputs=6, seed=42)
                b.output_bus("y", outs)
                netlists.append(b.netlist)
            assert netlists[0].family_histogram() == netlists[1].family_histogram()

    def test_random_logic_depth_bounded(self):
        builder = NetlistBuilder("r")
        ins = builder.input_bus("x", 8)
        outs = random_logic(builder, ins, n_gates=400, n_outputs=4, seed=1, n_layers=6)
        builder.output_bus("y", outs)
        # depth bounded by layers (and_/xor expand to 2 gates)
        assert max(builder.netlist.levelize().values()) <= 13

    def test_random_logic_simulates(self):
        builder = NetlistBuilder("r")
        ins = builder.input_bus("x", 4)
        outs = random_logic(builder, ins, n_gates=60, n_outputs=3, seed=9)
        builder.output_bus("y", outs)
        netlist = builder.netlist
        netlist.validate()
        out = run(netlist, x=(4, 0b1010))
        assert set(out) == {"y[0]", "y[1]", "y[2]"}

    def test_decode_rom_structure(self):
        builder = NetlistBuilder("d")
        opcode = builder.input_bus("op", 6)
        outs = decode_rom(builder, opcode, n_outputs=10, seed=3)
        builder.output_bus("c", outs)
        netlist = builder.netlist
        netlist.validate()
        assert len(outs) == 10
        run(netlist, op=(6, 0b101010))


class TestPeripherals:
    def test_timer_counts_and_matches(self):
        builder = NetlistBuilder("t")
        builder.clock()
        rst = builder.input("rst_n")
        compare = builder.input_bus("cmp", 4)
        ports = timer(builder, 4, compare, enable=builder.tie(1), reset_n=rst)
        builder.output_bus("count", ports.count)
        builder.output("match", ports.match)
        netlist = builder.netlist
        base = {"clk": False, "rst_n": True, **int_to_bus_inputs("cmp", 4, 3)}
        for port in netlist.input_ports():
            base.setdefault(port, port == "tie1")
        observed = simulate_sequence(netlist, [dict(base) for _ in range(6)])
        counts = [sum(1 << i for i in range(4) if o[f"count[{i}]"]) for o in observed]
        assert counts == [0, 1, 2, 3, 4, 5]
        matches = [o["match"] for o in observed]
        assert matches == [False, False, False, True, False, False]

    def test_uart_shifts_lsb_first(self):
        builder = NetlistBuilder("u")
        builder.clock()
        rst = builder.input("rst_n")
        data = builder.input_bus("d", 4)
        serial = uart_tx(builder, data, load=builder.input("load"), reset_n=rst)
        builder.output("tx", serial)
        netlist = builder.netlist
        value = 0b1011

        def cycle(load):
            inputs = {"clk": False, "rst_n": True, "load": load,
                      **int_to_bus_inputs("d", 4, value)}
            for port in netlist.input_ports():
                inputs.setdefault(port, False)
            return inputs

        observed = simulate_sequence(
            netlist, [cycle(True)] + [cycle(False)] * 4
        )
        bits = [o["tx"] for o in observed[1:]]
        assert bits == [True, True, False, True]  # LSB first
