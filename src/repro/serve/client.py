"""The first-class client of the tuning service.

:class:`TuningClient` is the blocking, typed surface — build a typed
request, POST its versioned envelope, parse the typed response, and
re-raise structured errors as the same
:class:`~repro.errors.ReproError` subclasses the server raised (a
:class:`~repro.errors.ServerBusyError` on the server is a
``ServerBusyError`` in the caller, with the trace id attached).  It
speaks plain stdlib ``http.client``; one connection per call keeps the
failure modes trivial.

:func:`request_async` is the non-blocking sibling the load generator
(:mod:`repro.serve.loadgen`) fans out with: one request per dedicated
connection on the caller's event loop, returning the raw HTTP status
alongside the parsed response instead of raising — load tests want to
*count* 429s, not die on the first one.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServeError
from repro.serve.schema import (
    ErrorResponse,
    Request,
    Response,
    StatusRequest,
    StatusResponse,
    SweepRequest,
    SweepResponse,
    TuneRequest,
    TuneResponse,
    error_from_payload,
    parse_response,
)


class TuningClient:
    """Blocking client for a running :class:`TuningServer`.

    Every call opens a fresh connection, sends one request, and closes
    — stateless on the wire, so a restarted server never strands the
    client.  Typed methods (:meth:`tune`, :meth:`sweep`,
    :meth:`status`) build the request objects; :meth:`send` takes any
    prebuilt typed request.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8731, timeout: float = 120.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    def send(
        self, request: Request, trace_id: Optional[str] = None
    ) -> Response:
        """POST one typed request; return the typed response.

        A structured error response is re-raised as its
        :mod:`repro.errors` type (with ``.trace_id`` attached);
        transport failures raise :class:`~repro.errors.ServeError`.
        """
        body = json.dumps(request.to_payload()).encode("utf-8")
        headers = {"content-type": "application/json"}
        if trace_id is not None:
            headers["x-repro-trace"] = trace_id
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("POST", "/v1/request", body=body, headers=headers)
            raw = connection.getresponse().read()
        except (OSError, http.client.HTTPException) as error:
            raise ServeError(
                f"tuning service at {self.host}:{self.port} unreachable: "
                f"{type(error).__name__}: {error}"
            ) from None
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(
                f"tuning service sent undecodable response: {error}"
            ) from None
        response = parse_response(payload)
        if isinstance(response, ErrorResponse):
            raise error_from_payload(response)
        return response

    def _expect(self, response: Response, kind: type) -> Any:
        """Narrow a response to the kind this request must produce."""
        if not isinstance(response, kind):
            raise ServeError(
                f"tuning service answered with {type(response).__name__}, "
                f"expected {kind.__name__}"
            )
        return response

    def tune(
        self,
        method: str,
        parameter: float,
        clock_period: float,
        design: str = "microcontroller",
        scale: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> TuneResponse:
        """Request one baseline-vs-tuned comparison point."""
        request = TuneRequest(
            method=method,
            parameter=parameter,
            clock_period=clock_period,
            design=design,
            scale=scale,
        )
        response = self.send(request, trace_id=trace_id)
        return self._expect(response, TuneResponse)

    def sweep(
        self,
        designs: Tuple[str, ...] = ("microcontroller",),
        methods: Optional[Tuple[str, ...]] = None,
        parameters: Optional[Tuple[float, ...]] = None,
        clock_periods: Tuple[float, ...] = (3.0,),
        scale: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> SweepResponse:
        """Request one incremental grid sweep."""
        request = SweepRequest(
            designs=designs,
            methods=methods,
            parameters=parameters,
            clock_periods=clock_periods,
            scale=scale,
        )
        response = self.send(request, trace_id=trace_id)
        return self._expect(response, SweepResponse)

    def status(self) -> Dict[str, Any]:
        """The server's health/load snapshot."""
        response = self.send(StatusRequest())
        return dict(self._expect(response, StatusResponse).status)


async def request_async(
    request: Request,
    host: str = "127.0.0.1",
    port: int = 8731,
    trace_id: Optional[str] = None,
    timeout: float = 120.0,
) -> Tuple[int, Response]:
    """Send one request on a dedicated connection, without blocking.

    Returns ``(http_status, typed_response)`` — error responses come
    back as :class:`~repro.serve.schema.ErrorResponse` values rather
    than raising, so a load generator can tally 429s and 400s as
    outcomes.  Transport-level failures still raise
    :class:`~repro.errors.ServeError`.
    """
    body = json.dumps(request.to_payload()).encode("utf-8")
    trace_header = (
        f"x-repro-trace: {trace_id}\r\n" if trace_id is not None else ""
    )
    head = (
        f"POST /v1/request HTTP/1.1\r\n"
        f"host: {host}:{port}\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        f"{trace_header}"
        f"connection: close\r\n"
        f"\r\n"
    )
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as error:
        raise ServeError(
            f"tuning service at {host}:{port} unreachable: {error}"
        ) from None
    try:
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    except (OSError, asyncio.TimeoutError) as error:
        raise ServeError(
            f"tuning service exchange with {host}:{port} failed: "
            f"{type(error).__name__}: {error}"
        ) from None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    status_line, _, _ = raw.partition(b"\r\n")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServeError(
            f"tuning service sent a malformed status line: {status_line!r}"
        )
    status = int(parts[1])
    _, _, payload_bytes = raw.partition(b"\r\n\r\n")
    try:
        payload = json.loads(payload_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(
            f"tuning service sent undecodable response: {error}"
        ) from None
    return status, parse_response(payload)
