"""The cross-file rule catalog (see DESIGN.md §18).

Each rule judges the whole :class:`~repro.lint.graph.model.ProgramGraph`
at once — the per-file engine cannot see these invariants:

* **ASYNC001** — nothing reachable from an ``async def`` in
  ``repro.serve`` may block the event loop: no ``time.sleep``, no sync
  file/socket/subprocess I/O, and no call into a repro function whose
  transitive closure does any of those.  Only :class:`ast.Call` edges
  propagate, so handing a callable *to an executor*
  (``await asyncio.to_thread(fn)``) is a safe boundary by construction.
* **LOCK001** — an attribute that is mutated under a ``lock``/``_lock``
  acquisition anywhere in its class is lock-guarded state; every other
  mutation of it must either sit under the lock lexically or be
  *lock-dominated* — every call path into the mutating function holds
  the lock at the call site (how ``MetricsRegistry._collect_spool``
  stays legal: only ``snapshot()`` calls it, inside ``with
  self.lock``).
* **DET003** — the interprocedural half of DET002: a function whose
  return value derives from wall clock or global RNG (directly or
  through further calls) is a nondeterminism *source*; its value may
  not be passed into a fingerprint/digest/hash sink in a deterministic
  zone, no matter how many modules sit in between.
* **ARCH001** — the layering declared under ``[tool.repro-lint]`` in
  ``pyproject.toml`` is enforced on the module-level import graph: a
  module may import its own layer and below, never above, and import
  cycles are reported per strongly-connected component.

Rules report through the ordinary :class:`~repro.lint.findings.Finding`
type, so baselines, ``# repro: noqa[...]`` / ``noqa-file[...]`` and
every output format apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.graph.model import (
    CallSite,
    FunctionNode,
    ModuleNode,
    ProgramGraph,
    is_internal,
)
from repro.lint.rules import (
    _FINGERPRINT_NAME,
    DETERMINISTIC_ZONES,
    GLOBAL_NUMPY_CALLS,
    GLOBAL_RANDOM_CALLS,
    WALL_CLOCK_CALLS,
)

#: External callables that block the calling thread outright.
_BLOCKING_EXACT = frozenset({
    "time.sleep",
    "open", "io.open", "builtins.open", "input",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.socket",
    "urllib.request.urlopen",
    "os.open", "os.write", "os.read", "os.fsync", "os.stat",
    "os.listdir", "os.scandir", "os.walk", "os.mkdir", "os.makedirs",
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
    "os.path.getsize", "os.path.getmtime", "os.path.exists",
    "os.path.isfile", "os.path.isdir",
})

#: Library prefixes that are sync I/O wholesale.
_BLOCKING_PREFIXES = (
    "subprocess.", "requests.", "shutil.", "tempfile.", "gzip.",
    "sqlite3.", "http.client.", "ftplib.", "smtplib.",
)

#: ``pathlib.Path`` methods that hit the filesystem.
_BLOCKING_PATH_METHODS = frozenset({
    "open", "read_text", "read_bytes", "write_text", "write_bytes",
    "glob", "rglob", "iterdir", "stat", "lstat", "exists", "is_dir",
    "is_file", "mkdir", "unlink", "rename", "replace", "touch",
    "resolve", "rmdir", "samefile", "hardlink_to", "symlink_to",
    "chmod", "owner", "group", "readlink",
})


def _is_blocking_external(key: str) -> bool:
    """Whether an ``ext:`` key names a thread-blocking callable."""
    if not key.startswith("ext:"):
        return False
    name = key[4:]
    if name in _BLOCKING_EXACT:
        return True
    if name.startswith(_BLOCKING_PREFIXES):
        return True
    if name.startswith("pathlib.Path."):
        return name.rpartition(".")[2] in _BLOCKING_PATH_METHODS
    return False


def _is_nondet_external(key: str) -> bool:
    """Whether an ``ext:`` key reads wall clock or global RNG state."""
    if not key.startswith("ext:"):
        return False
    name = key[4:]
    if name in WALL_CLOCK_CALLS:
        return True
    head, _, tail = name.rpartition(".")
    if head == "random" and tail in GLOBAL_RANDOM_CALLS:
        return True
    if head == "numpy.random" and tail in GLOBAL_NUMPY_CALLS:
        return True
    return name in ("uuid.uuid1", "uuid.uuid4", "os.urandom", "secrets.token_hex")


def _display(key: str) -> str:
    """Human-readable form of a resolution key."""
    if key.startswith("ext:") or key.startswith("?:"):
        return key.partition(":")[2]
    module, _, qual = key.partition(":")
    return f"{module}.{qual}" if qual else module


def _suppressed(module: Optional[ModuleNode], line: int, rule_id: str) -> bool:
    if module is None:
        return False
    if rule_id in module.noqa_file:
        return True
    return rule_id in module.noqa.get(line, [])


@dataclass
class GraphSettings:
    """Per-repo configuration the graph rules read.

    Loaded from ``[tool.repro-lint]`` in ``pyproject.toml`` by
    :func:`repro.lint.graph.layers.load_graph_settings`; tests pass it
    directly.
    """

    #: Ordered layer groups, lowest first; each entry lists package
    #: prefixes that share the layer.  A module may import its own
    #: layer and below.  Empty -> ARCH001 only reports cycles.
    layers: List[List[str]] = field(default_factory=list)
    #: Packages whose ``async def`` bodies ASYNC001 polices.
    async_packages: Tuple[str, ...] = ("repro.serve",)
    #: Packages whose fingerprint sinks DET003 polices.
    det_packages: Tuple[str, ...] = DETERMINISTIC_ZONES + ("repro.serve",)


class GraphRule:
    """Base class for whole-program rules."""

    rule_id: str = "GRAPH000"
    title: str = ""
    severity: str = "error"
    hint: str = ""
    rationale: str = ""

    def check(
        self, graph: ProgramGraph, settings: GraphSettings
    ) -> List[Finding]:
        """Judge the whole program; return unsuppressed findings."""
        raise NotImplementedError

    def _report(
        self,
        graph: ProgramGraph,
        out: List[Finding],
        module_name: str,
        line: int,
        column: int,
        message: str,
    ) -> None:
        module = graph.modules.get(module_name)
        if module is None or _suppressed(module, line, self.rule_id):
            return
        out.append(
            Finding(
                path=module.path,
                line=line,
                column=column,
                rule_id=self.rule_id,
                message=message,
                hint=self.hint,
                severity=self.severity,
            )
        )


def _in_packages(module: str, packages: Sequence[str]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


# ---------------------------------------------------------------------------
# ASYNC001


class Async001BlockingInCoroutine(GraphRule):
    """ASYNC001: no blocking work reachable from a serve coroutine."""

    rule_id = "ASYNC001"
    title = "blocking call reachable from an async def"
    hint = (
        "hop the blocking work off the loop with "
        "`await asyncio.to_thread(fn, ...)` (only the function "
        "reference crosses; the call happens in the executor)"
    )
    rationale = (
        "one sync disk read inside a serve coroutine stalls every "
        "in-flight request on the event loop; the call graph makes "
        "transitively-blocking helpers visible at the await site"
    )

    def check(
        self, graph: ProgramGraph, settings: GraphSettings
    ) -> List[Finding]:
        """Flag async defs in the watched packages that reach blocking calls."""
        blocking = self._blocking_closure(graph)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            function = graph.functions[key]
            if not function.is_async:
                continue
            if not _in_packages(function.module, settings.async_packages):
                continue
            for site in function.calls:
                chain = self._offending_chain(site.callee, graph, blocking)
                if chain is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is not None and callee.is_async:
                    # The async callee is flagged at its own site;
                    # re-reporting every awaiter would just repeat it.
                    continue
                self._report(
                    graph,
                    findings,
                    function.module,
                    site.line,
                    site.column,
                    f"async '{function.qualname}' reaches blocking call: "
                    + " -> ".join(chain),
                )
        return findings

    def _blocking_closure(
        self, graph: ProgramGraph
    ) -> Dict[str, Tuple[str, int]]:
        """Internal key -> (witness callee key, line) fixpoint."""
        blocking: Dict[str, Tuple[str, int]] = {}
        changed = True
        while changed:
            changed = False
            for key in sorted(graph.functions):
                if key in blocking:
                    continue
                function = graph.functions[key]
                for site in function.calls:
                    if (
                        _is_blocking_external(site.callee)
                        or site.callee in blocking
                    ):
                        blocking[key] = (site.callee, site.line)
                        changed = True
                        break
        return blocking

    def _offending_chain(
        self,
        callee: str,
        graph: ProgramGraph,
        blocking: Dict[str, Tuple[str, int]],
    ) -> Optional[List[str]]:
        """Witness chain from a call edge down to the blocking leaf."""
        if _is_blocking_external(callee):
            return [_display(callee)]
        if callee not in blocking:
            return None
        chain: List[str] = []
        key = callee
        for _ in range(6):
            chain.append(_display(key))
            if key not in blocking:
                break
            key, _line = blocking[key]
            if _is_blocking_external(key):
                chain.append(_display(key))
                break
        else:
            chain.append("...")
        return chain


# ---------------------------------------------------------------------------
# LOCK001


class Lock001UnguardedMutation(GraphRule):
    """LOCK001: lock-guarded attributes stay under the lock."""

    rule_id = "LOCK001"
    title = "mutation of lock-guarded state outside the lock"
    hint = (
        "wrap the mutation in `with self.lock:` (or the owning "
        "object's lock), or make every caller hold the lock at the "
        "call site so the method is lock-dominated"
    )
    rationale = (
        "MetricsRegistry and the instrument children are shared "
        "across the serve event loop, worker threads and the sweep "
        "driver; one unlocked write races snapshot() and tears the "
        "exposition"
    )

    def check(
        self, graph: ProgramGraph, settings: GraphSettings
    ) -> List[Finding]:
        """Flag lock-guarded attribute mutations reachable without the lock."""
        guarded = self._guarded_attrs(graph)
        if not guarded:
            return []
        dominated = self._lock_dominated(graph)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            function = graph.functions[key]
            if function.name == "__init__":
                continue  # construction is single-threaded
            for mutation in function.mutations:
                attrs = guarded.get(mutation.receiver_type)
                if not attrs or mutation.attr not in attrs:
                    continue
                if mutation.under_lock:
                    continue
                if key in dominated:
                    continue
                lock_name = self._lock_name(graph, mutation.receiver_type)
                self._report(
                    graph,
                    findings,
                    function.module,
                    mutation.line,
                    mutation.column,
                    f"'{_display(mutation.receiver_type)}.{mutation.attr}'"
                    f" is guarded by '{lock_name}' elsewhere but mutated "
                    f"here without it (in '{function.qualname}', and not "
                    "every caller holds the lock)",
                )
        return findings

    @staticmethod
    def _lock_name(graph: ProgramGraph, class_key: str) -> str:
        klass = graph.classes.get(class_key)
        if klass is not None and klass.lock_attrs:
            return klass.lock_attrs[0]
        return "lock"

    @staticmethod
    def _guarded_attrs(graph: ProgramGraph) -> Dict[str, Set[str]]:
        """Class key -> attrs mutated under a lock in its methods."""
        guarded: Dict[str, Set[str]] = {}
        for function in graph.functions.values():
            if function.name == "__init__":
                continue
            for mutation in function.mutations:
                if not mutation.under_lock:
                    continue
                if not is_internal(mutation.receiver_type):
                    continue
                if not mutation.receiver_type:
                    continue
                guarded.setdefault(mutation.receiver_type, set()).add(
                    mutation.attr
                )
        return guarded

    @staticmethod
    def _lock_dominated(graph: ProgramGraph) -> Set[str]:
        """Functions whose every call path holds a lock at the site.

        Greatest fixpoint: start from "every function with at least
        one caller", then strip any function some caller reaches
        without the lock (unless that caller is itself dominated or an
        ``__init__`` — construction is single-threaded).
        """
        callers: Dict[str, List[Tuple[FunctionNode, CallSite]]] = {}
        for function in graph.functions.values():
            for site in function.calls:
                if site.callee in graph.functions:
                    callers.setdefault(site.callee, []).append(
                        (function, site)
                    )
        dominated = {key for key in graph.functions if key in callers}
        changed = True
        while changed:
            changed = False
            for key in sorted(dominated):
                for caller, site in callers.get(key, []):
                    if site.under_lock:
                        continue
                    if caller.name == "__init__":
                        continue
                    if caller.key in dominated:
                        continue
                    dominated.discard(key)
                    changed = True
                    break
        return dominated


# ---------------------------------------------------------------------------
# DET003


class Det003CrossModuleNondeterminism(GraphRule):
    """DET003: nondeterministic returns must not reach fingerprints."""

    rule_id = "DET003"
    title = "nondeterministic value flows into a fingerprint sink"
    hint = (
        "thread the value in from outside the fingerprinted "
        "computation, or derive it from the inputs (seeded Generator, "
        "content hash) instead of wall clock / global RNG"
    )
    rationale = (
        "DET001/DET002 see one file; a helper in another module that "
        "returns time.time() poisons every cache key built from it "
        "with no local evidence at the sink"
    )

    def check(
        self, graph: ProgramGraph, settings: GraphSettings
    ) -> List[Finding]:
        """Flag nondeterministic values flowing into fingerprint sinks."""
        sources = self._nondet_sources(graph)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            function = graph.functions[key]
            if not _in_packages(function.module, settings.det_packages):
                continue
            for site in function.calls:
                if not self._is_sink(site.callee):
                    continue
                for arg_key in site.arg_calls:
                    reason = self._nondet_reason(arg_key, sources)
                    if reason is not None:
                        self._flag(
                            graph, findings, function, site, arg_key, reason
                        )
                for name in site.arg_names:
                    source_key = function.var_sources.get(name)
                    if source_key is None:
                        continue
                    reason = self._nondet_reason(source_key, sources)
                    if reason is not None:
                        self._flag(
                            graph,
                            findings,
                            function,
                            site,
                            source_key,
                            reason,
                            via=name,
                        )
        return findings

    def _flag(
        self,
        graph: ProgramGraph,
        findings: List[Finding],
        function: FunctionNode,
        site: CallSite,
        source_key: str,
        reason: str,
        via: Optional[str] = None,
    ) -> None:
        carrier = f"'{via}' (from {_display(source_key)})" if via else (
            f"return of {_display(source_key)}"
        )
        self._report(
            graph,
            findings,
            function.module,
            site.line,
            site.column,
            f"fingerprint sink '{_display(site.callee)}' receives "
            f"{carrier}, which is nondeterministic ({reason})",
        )

    @staticmethod
    def _is_sink(callee: str) -> bool:
        name = _display(callee).rpartition(".")[2]
        return bool(name) and bool(_FINGERPRINT_NAME.search(name))

    @staticmethod
    def _nondet_reason(key: str, sources: Dict[str, str]) -> Optional[str]:
        if _is_nondet_external(key):
            return f"{_display(key)} differs between identical runs"
        return sources.get(key)

    @staticmethod
    def _nondet_sources(graph: ProgramGraph) -> Dict[str, str]:
        """Function key -> why its return value is nondeterministic."""
        sources: Dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for key in sorted(graph.functions):
                if key in sources:
                    continue
                function = graph.functions[key]
                for site in function.calls:
                    if not site.in_return:
                        continue
                    if _is_nondet_external(site.callee):
                        sources[key] = (
                            f"'{function.qualname}' in {function.module} "
                            f"returns {_display(site.callee)}"
                        )
                        changed = True
                        break
                    if site.callee in sources:
                        sources[key] = (
                            f"'{function.qualname}' in {function.module} "
                            f"forwards it: {sources[site.callee]}"
                        )
                        changed = True
                        break
        return sources


# ---------------------------------------------------------------------------
# ARCH001


class Arch001Layering(GraphRule):
    """ARCH001: the declared layering holds on the import graph."""

    rule_id = "ARCH001"
    title = "import violates the declared layering (or forms a cycle)"
    hint = (
        "depend downward only: move the shared piece below both "
        "parties, or invert the dependency with a protocol/callback "
        "(layer map lives in pyproject.toml [tool.repro-lint])"
    )
    rationale = (
        "the layer map is the repo's one-page architecture; an upward "
        "import couples the deterministic core to serve-side churn "
        "and an import cycle makes both halves untestable alone"
    )

    def check(
        self, graph: ProgramGraph, settings: GraphSettings
    ) -> List[Finding]:
        """Flag upward imports against the layer map, and import cycles."""
        findings: List[Finding] = []
        layer_of = self._layer_index(settings.layers)
        if layer_of:
            for name in sorted(graph.modules):
                module = graph.modules[name]
                importer_layer = self._layer(name, layer_of)
                if importer_layer is None:
                    continue
                for edge in module.imports:
                    if edge.target not in graph.modules:
                        continue
                    target_layer = self._layer(edge.target, layer_of)
                    if target_layer is None:
                        continue
                    if target_layer > importer_layer:
                        self._report(
                            graph,
                            findings,
                            name,
                            edge.line,
                            1,
                            f"'{name}' (layer {importer_layer}) imports "
                            f"'{edge.target}' (layer {target_layer}) — "
                            "modules may only import their own layer or "
                            "below",
                        )
        for cycle in self._cycles(graph):
            anchor = cycle[0]
            module = graph.modules[anchor]
            line = 1
            for edge in module.imports:
                if edge.target in cycle:
                    line = edge.line
                    break
            self._report(
                graph,
                findings,
                anchor,
                line,
                1,
                "import cycle: " + " -> ".join(cycle + [anchor]),
            )
        return findings

    @staticmethod
    def _layer_index(layers: List[List[str]]) -> Dict[str, int]:
        return {
            package: index
            for index, group in enumerate(layers)
            for package in group
        }

    @staticmethod
    def _layer(module: str, layer_of: Dict[str, int]) -> Optional[int]:
        best: Optional[Tuple[int, int]] = None
        for package, index in layer_of.items():
            if module == package or module.startswith(package + "."):
                candidate = (len(package), index)
                if best is None or candidate > best:
                    best = candidate
        return best[1] if best else None

    @staticmethod
    def _cycles(graph: ProgramGraph) -> List[List[str]]:
        """Non-trivial SCCs of the import graph (Tarjan, iterative)."""
        edges = graph.import_graph()
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, Iterator[str]]] = []
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(edges.get(root, ())))))
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append(
                            (child, iter(sorted(edges.get(child, ()))))
                        )
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for name in sorted(edges):
            if name not in index_of:
                strongconnect(name)
        return sorted(sccs)


#: The graph rules ``python -m repro lint --graph`` runs.
DEFAULT_GRAPH_RULES: Tuple[GraphRule, ...] = (
    Async001BlockingInCoroutine(),
    Lock001UnguardedMutation(),
    Det003CrossModuleNondeterminism(),
    Arch001Layering(),
)


def graph_rule_catalog() -> List[Dict[str, str]]:
    """Metadata of every graph rule (same shape as ``rule_catalog``)."""
    return [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "severity": rule.severity,
            "rationale": rule.rationale,
            "hint": rule.hint,
        }
        for rule in DEFAULT_GRAPH_RULES
    ]


def run_graph_rules(
    graph: ProgramGraph,
    settings: Optional[GraphSettings] = None,
    rules: Sequence[GraphRule] = DEFAULT_GRAPH_RULES,
) -> List[Finding]:
    """Run every graph rule; findings come back sorted."""
    if settings is None:
        settings = GraphSettings()
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(graph, settings))
    return sorted(findings)
