"""Monte-Carlo sampling determinism and statistics."""

import numpy as np
import pytest

from repro.variation.montecarlo import (
    ArcVariation,
    GlobalVariation,
    MonteCarloSampler,
    NetworkGeometry,
)
from repro.variation.pelgrom import PelgromModel


GEO = NetworkGeometry(width=0.12, length=0.04, stack=1)
GEO_STACKED = NetworkGeometry(width=0.24, length=0.04, stack=2)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = MonteCarloSampler(seed=11)
        b = MonteCarloSampler(seed=11)
        for _ in range(5):
            assert a.sample_network(GEO) == b.sample_network(GEO)

    def test_different_seeds_differ(self):
        a = MonteCarloSampler(seed=1).sample_network(GEO)
        b = MonteCarloSampler(seed=2).sample_network(GEO)
        assert a != b

    def test_global_sampling_deterministic(self):
        assert (
            MonteCarloSampler(seed=3).sample_global()
            == MonteCarloSampler(seed=3).sample_global()
        )


class TestStatistics:
    def test_network_sigma_matches_pelgrom(self):
        sampler = MonteCarloSampler(seed=0)
        draws = np.array([sampler.sample_network(GEO)[0] for _ in range(4000)])
        expected = PelgromModel().sigma_vth(GEO.width, GEO.length)
        assert draws.std() == pytest.approx(expected, rel=0.08)
        assert abs(draws.mean()) < expected * 0.1

    def test_stacked_network_has_lower_sigma(self):
        sampler = MonteCarloSampler(seed=0)
        flat = np.array([sampler.sample_network(GEO)[0] for _ in range(2000)])
        stacked = np.array(
            [sampler.sample_network(GEO_STACKED)[0] for _ in range(2000)]
        )
        assert stacked.std() < flat.std()

    def test_arc_variation_networks_independent(self):
        sampler = MonteCarloSampler(seed=5)
        arcs = [sampler.sample_arc(GEO, GEO) for _ in range(3000)]
        rise = np.array([a.dvth_rise for a in arcs])
        fall = np.array([a.dvth_fall for a in arcs])
        assert abs(np.corrcoef(rise, fall)[0, 1]) < 0.08


class TestZeroVariations:
    def test_none_constructors(self):
        assert GlobalVariation.none() == GlobalVariation(0.0, 0.0, 0.0)
        assert ArcVariation.none().dvth_rise == 0.0

    def test_global_sigma_budget_used(self):
        sampler = MonteCarloSampler(seed=0)
        draws = np.array([sampler.sample_global().dvth for _ in range(4000)])
        assert draws.std() == pytest.approx(sampler.global_sigmas.vth, rel=0.08)
