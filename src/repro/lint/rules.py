"""The repo-specific rule catalog (see DESIGN.md §13).

Each rule encodes one of the invariants the execution layer depends on
but the language cannot enforce:

* **DET001** — no wall-clock reads or global/unseeded RNG inside the
  deterministic zones (everything whose output feeds content
  fingerprints: characterization, tuning, flow stages, the parallel
  substrate).  One ``time.time()`` in a fingerprinted stage poisons the
  artifact store silently.
* **DET002** — no iteration over ``set(...)``/``{...}``/``.values()``
  feeding a fingerprint/hash/digest/key computation without
  ``sorted(...)``; unordered iteration makes the digest depend on hash
  seeds and construction history.
* **PROC001** — append-mode files shared between processes (JSONL
  exporters, the run ledger) must write each record as exactly one
  write call; two writes per record can interleave with another
  process and tear the line.
* **PROC002** — callables submitted to a ``ProcessPoolExecutor`` must
  be module-level: lambdas, nested functions and bound methods either
  fail to pickle or drag the enclosing object across the process
  boundary.
* **PROC003** — ``ProcessPoolExecutor`` is constructed in exactly one
  place, :mod:`repro.parallel.backends`; every other module dispatches
  through an :class:`~repro.parallel.backends.ExecutorBackend`.  A raw
  pool at a fan-out site silently bypasses backend selection, the
  single-worker serial fallback and the worker-tracer plumbing.
* **API001** — library code raises :mod:`repro.errors` types; bare
  ``raise Exception`` gives callers nothing to catch and ``assert``
  disappears under ``python -O``.
* **OBS001** — ``repro_*`` metric instruments are declared only in
  :mod:`repro.observe.catalog`; a counter/gauge/histogram created at a
  call site can silently fork the namespace (name drift, mismatched
  label sets) and escape the DESIGN.md §17 inventory.

Rules are intentionally small (the engine carries the traversal,
import resolution and scope bookkeeping); adding one is ~30 lines —
subclass :class:`~repro.lint.engine.Rule`, declare ``node_types``,
implement ``visit``, append it to :data:`DEFAULT_RULES`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Rule

#: Module prefixes whose outputs feed content fingerprints.  The
#: observability layer, the CLI and the linter itself are deliberately
#: outside: wall time there is the point, not a hazard.
DETERMINISTIC_ZONES: Tuple[str, ...] = (
    "repro.cells",
    "repro.characterization",
    "repro.core",
    "repro.experiments",
    "repro.flow",
    "repro.kernels",
    "repro.liberty",
    "repro.netlist",
    "repro.parallel",
    "repro.sta",
    "repro.statlib",
    "repro.synth",
    "repro.variation",
)

#: Wall-clock reads that make a value differ between two identical runs.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``random`` module functions backed by the hidden global generator.
GLOBAL_RANDOM_CALLS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "normalvariate", "paretovariate", "randbytes",
    "randint", "random", "randrange", "sample", "seed", "shuffle",
    "triangular", "uniform", "vonmisesvariate",
})

#: ``numpy.random`` module functions backed by the legacy global state.
GLOBAL_NUMPY_CALLS = frozenset({
    "beta", "binomial", "choice", "exponential", "gamma", "get_state",
    "lognormal", "normal", "permutation", "poisson", "rand", "randint",
    "randn", "random", "random_sample", "seed", "set_state", "shuffle",
    "standard_normal", "uniform",
})

#: Function-name shapes that mark a fingerprint/cache-key computation.
_FINGERPRINT_NAME = re.compile(
    r"(fingerprint|digest|hash|sha\d|blake2|md5)|(^|_)key$", re.IGNORECASE
)


def _in_deterministic_zone(module: str) -> bool:
    """Whether a dotted module lies in a DET001 zone."""
    return any(
        module == zone or module.startswith(zone + ".")
        for zone in DETERMINISTIC_ZONES
    )


class Det001WallClockAndGlobalRng(Rule):
    """DET001: no wall clock / global RNG in deterministic zones."""

    rule_id = "DET001"
    title = "wall-clock or unseeded RNG in a deterministic zone"
    hint = (
        "thread the value in from outside the fingerprinted stage, or "
        "use a seeded numpy Generator (np.random.default_rng(seed))"
    )
    rationale = (
        "characterization kernels, flow stages and everything feeding "
        "ArtifactStore keys must be pure functions of their inputs — a "
        "wall-clock read or a draw from hidden global RNG state makes "
        "two identical runs disagree and silently poisons the "
        "content-addressed store"
    )
    node_types = (ast.Call,)

    def applies_to(self, context: FileContext) -> bool:
        """Only the fingerprint-feeding zones are held to DET001."""
        return _in_deterministic_zone(context.module)

    def visit(self, node: ast.Call, context: FileContext) -> None:
        """Flag wall-clock reads and global/unseeded RNG calls."""
        name, known = context.resolved_call_name(node)
        if name is None or not known:
            return
        if name in WALL_CLOCK_CALLS:
            context.report(
                self, node,
                f"wall-clock read '{name}()' inside deterministic zone "
                f"'{context.module}'",
            )
            return
        head, _, attr = name.rpartition(".")
        if head == "random" and attr in GLOBAL_RANDOM_CALLS:
            context.report(
                self, node,
                f"global-state RNG call 'random.{attr}()' inside "
                f"deterministic zone '{context.module}'",
            )
        elif head == "random" and attr == "Random" and not (
            node.args or node.keywords
        ):
            context.report(
                self, node,
                "unseeded 'random.Random()' inside deterministic zone "
                f"'{context.module}'",
            )
        elif head == "numpy.random" and attr in GLOBAL_NUMPY_CALLS:
            context.report(
                self, node,
                f"global-state RNG call 'numpy.random.{attr}()' inside "
                f"deterministic zone '{context.module}'",
            )
        elif (
            name in ("numpy.random.default_rng", "numpy.random.RandomState")
            and not (node.args or node.keywords)
        ):
            context.report(
                self, node,
                f"unseeded '{name}()' inside deterministic zone "
                f"'{context.module}'",
            )


class Det002UnorderedFingerprintInput(Rule):
    """DET002: no unordered iteration feeding hashes or fingerprints."""

    rule_id = "DET002"
    title = "unordered iteration feeding a fingerprint"
    hint = "wrap the iterable in sorted(...) before it reaches the digest"
    rationale = (
        "set iteration order depends on insertion history and hash "
        "seeds; dict.values() order on construction order — a "
        "fingerprint folded over either is not a function of the "
        "content it claims to address"
    )
    node_types = (ast.Call, ast.For, ast.comprehension)

    @staticmethod
    def _unordered_form(node: ast.AST, context: FileContext) -> Optional[str]:
        """Describe ``node`` when it yields unordered iteration."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.Call):
            name, _ = context.resolved_call_name(node)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "values"
                and not node.args
            ):
                return ".values()"
        return None

    def _in_fingerprint_scope(self, context: FileContext) -> bool:
        return any(
            _FINGERPRINT_NAME.search(name)
            for name in context.scope_functions()
        )

    def visit(self, node: ast.AST, context: FileContext) -> None:
        """Flag unordered iterables at hash sinks or in hash scopes."""
        if isinstance(node, ast.Call):
            name, _ = context.resolved_call_name(node)
            if name is None or not _FINGERPRINT_NAME.search(
                name.rpartition(".")[2]
            ):
                return
            for argument in node.args:
                form = self._unordered_form(argument, context)
                if form:
                    context.report(
                        self, argument,
                        f"{form} passed to '{name}(...)' — unordered "
                        "iteration feeding a fingerprint",
                    )
            return
        # ast.For / ast.comprehension: only inside fingerprint-shaped
        # functions, where the loop body almost certainly feeds the
        # digest being built.
        if not self._in_fingerprint_scope(context):
            return
        iterable = node.iter
        form = self._unordered_form(iterable, context)
        if form:
            function = context.scope_functions()[-1]
            context.report(
                self, iterable,
                f"iteration over {form} inside fingerprint function "
                f"'{function}'",
            )


class Proc001SingleShotAppend(Rule):
    """PROC001: one write call per record on shared append-mode files."""

    rule_id = "PROC001"
    title = "multi-call write to a shared append-mode file"
    hint = (
        "build the full record (line + newline) first, then emit it "
        "with a single write/os.write call"
    )
    rationale = (
        "POSIX O_APPEND makes ONE write atomic; a record emitted as "
        "two writes can interleave with another process's record and "
        "tear the JSONL file"
    )
    node_types = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    @staticmethod
    def _scope_walk(body: List[ast.stmt]) -> "List[ast.AST]":
        """Every node in ``body`` without descending into nested defs.

        Each function is scanned exactly once — when the engine visits
        its own ``FunctionDef`` node — so the module-level scan must
        not reach inside it.
        """
        nodes: List[ast.AST] = []

        def walk(node: ast.AST) -> None:
            nodes.append(node)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return
            for child in ast.iter_child_nodes(node):
                walk(child)

        for statement in body:
            walk(statement)
        return nodes

    @staticmethod
    def _append_mode(call: ast.Call, context: FileContext) -> bool:
        """Whether ``call`` is ``open(...)`` in an append mode."""
        name, _ = context.resolved_call_name(call)
        if name not in ("open", "io.open", "pathlib.Path.open"):
            return False
        mode: Optional[ast.expr] = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and "a" in mode.value
        )

    @staticmethod
    def _append_fd_assignment(node: ast.AST, context: FileContext) -> Optional[str]:
        """Name bound by ``x = os.open(..., O_APPEND...)``, if any."""
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            return None
        name, _ = context.resolved_call_name(node.value)
        if name != "os.open":
            return None
        flags = " ".join(
            context.dotted_name(sub) or ""
            for argument in node.value.args
            for sub in ast.walk(argument)
        )
        return node.targets[0].id if "O_APPEND" in flags else None

    def _scan_writes(
        self,
        body: List[ast.stmt],
        handles: Set[str],
        fds: Set[str],
        context: FileContext,
    ) -> None:
        """Count write calls per handle within one straight-line body."""
        counts: Dict[str, List[ast.AST]] = {}

        def record(name: str, node: ast.AST, in_loop: bool) -> None:
            counts.setdefault(name, []).append(node)
            if in_loop:
                context.report(
                    self, node,
                    f"write to append-mode handle '{name}' inside a "
                    "loop — each loop iteration must be its own "
                    "single-shot append",
                )
            elif len(counts[name]) == 2:
                context.report(
                    self, node,
                    f"second write to append-mode handle '{name}' in "
                    "one block — a record split over several writes "
                    "can tear under concurrent appenders",
                )

        def walk(node: ast.AST, in_loop: bool) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("write", "writelines")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in handles
                ):
                    record(node.func.value.id, node, in_loop)
                else:
                    name, _ = context.resolved_call_name(node)
                    if (
                        name == "os.write"
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in fds
                    ):
                        record(node.args[0].id, node, in_loop)
            entering_loop = in_loop or isinstance(
                node, (ast.For, ast.AsyncFor, ast.While)
            )
            for child in ast.iter_child_nodes(node):
                walk(child, entering_loop)

        for statement in body:
            walk(statement, False)

    def visit(self, node: ast.AST, context: FileContext) -> None:
        """Scan one function (or the module body) for torn appends."""
        body = getattr(node, "body", [])
        scope = self._scope_walk(body)
        fds: Set[str] = set()
        for sub in scope:
            fd_name = self._append_fd_assignment(sub, context)
            if fd_name:
                fds.add(fd_name)
        if fds:
            self._scan_writes(body, set(), fds, context)
        for sub in scope:
            if isinstance(sub, ast.With):
                handles = {
                    item.optional_vars.id
                    for item in sub.items
                    if isinstance(item.context_expr, ast.Call)
                    and self._append_mode(item.context_expr, context)
                    and isinstance(item.optional_vars, ast.Name)
                }
                if handles:
                    self._scan_writes(sub.body, handles, set(), context)


class Proc002ModuleLevelExecutorCallables(Rule):
    """PROC002: executor-submitted callables must be module-level."""

    rule_id = "PROC002"
    title = "non-picklable callable submitted to a process pool"
    hint = (
        "hoist the callable to module level and pass its inputs as "
        "arguments (functools.partial over a module-level function is "
        "fine)"
    )
    rationale = (
        "ProcessPoolExecutor pickles the callable by qualified name: "
        "lambdas and nested functions fail outright, and bound methods "
        "drag their whole instance across the process boundary on "
        "every task"
    )
    node_types = (ast.With, ast.Assign, ast.Call)

    _EXECUTOR_TYPES = (
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    )

    def _executors(self, context: FileContext) -> Set[str]:
        return context.state.setdefault(self.rule_id, {}).setdefault(
            "executors", set()
        )

    def _is_executor_call(self, node: ast.AST, context: FileContext) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name, known = context.resolved_call_name(node)
        return known and name in self._EXECUTOR_TYPES

    def _check_callable(
        self, node: ast.expr, context: FileContext, method: str
    ) -> None:
        if isinstance(node, ast.Lambda):
            context.report(
                self, node,
                f"lambda passed to ProcessPoolExecutor.{method}() — "
                "lambdas cannot be pickled",
            )
            return
        if isinstance(node, ast.Name):
            if node.id in context.nested_defs and (
                node.id not in context.module_defs
            ):
                context.report(
                    self, node,
                    f"nested function '{node.id}' passed to "
                    f"ProcessPoolExecutor.{method}() — only "
                    "module-level callables survive pickling",
                )
            return
        if isinstance(node, ast.Call):
            name, _ = context.resolved_call_name(node)
            if name in ("functools.partial", "partial") and node.args:
                self._check_callable(node.args[0], context, method)
            return
        if isinstance(node, ast.Attribute):
            dotted = context.dotted_name(node)
            if dotted is None:
                context.report(
                    self, node,
                    f"computed attribute passed to "
                    f"ProcessPoolExecutor.{method}() — submit a "
                    "module-level callable instead",
                )
                return
            head = dotted.partition(".")[0]
            if head in context.module_aliases:
                return  # module.function — picklable by qualified name
            context.report(
                self, node,
                f"bound or instance attribute '{dotted}' passed to "
                f"ProcessPoolExecutor.{method}() — it pickles the "
                "whole instance (or fails); submit a module-level "
                "callable",
            )

    def visit(self, node: ast.AST, context: FileContext) -> None:
        """Track executor bindings and check submitted callables."""
        if isinstance(node, ast.With):
            for item in node.items:
                if self._is_executor_call(
                    item.context_expr, context
                ) and isinstance(item.optional_vars, ast.Name):
                    self._executors(context).add(item.optional_vars.id)
            return
        if isinstance(node, ast.Assign):
            if self._is_executor_call(node.value, context):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._executors(context).add(target.id)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "map")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self._executors(context)
            and node.args
        ):
            self._check_callable(node.args[0], context, node.func.attr)


class Proc003BackendDispatchOnly(Rule):
    """PROC003: process pools are built only by the backends module."""

    rule_id = "PROC003"
    title = "raw ProcessPoolExecutor outside repro.parallel.backends"
    hint = (
        "dispatch through repro.parallel.backends.resolve_backend(...)."
        "map_tasks(fn, tasks) instead of constructing a pool"
    )
    rationale = (
        "every fan-out site must honor the configured ExecutorBackend "
        "(FlowConfig(backend=...) / REPRO_BACKEND / --backend); a raw "
        "ProcessPoolExecutor bypasses backend selection, the "
        "single-worker serial fallback and the worker-tracer capture "
        "that merges worker spans into the parent trace"
    )
    node_types = (ast.Call,)

    #: The one module allowed to construct pools (it *implements* the
    #: process and queue backends).
    _BACKENDS_MODULE = "repro.parallel.backends"

    _EXECUTOR_TYPES = (
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    )

    def applies_to(self, context: FileContext) -> bool:
        """Every library module except the backends implementation."""
        return (
            context.module == "repro" or context.module.startswith("repro.")
        ) and context.module != self._BACKENDS_MODULE

    def visit(self, node: ast.Call, context: FileContext) -> None:
        """Flag any ProcessPoolExecutor construction."""
        name, known = context.resolved_call_name(node)
        if known and name in self._EXECUTOR_TYPES:
            context.report(
                self, node,
                f"ProcessPoolExecutor constructed in '{context.module}' — "
                "fan out through an ExecutorBackend (see "
                "repro.parallel.backends)",
            )


class Api001ErrorDiscipline(Rule):
    """API001: library errors go through :mod:`repro.errors`."""

    rule_id = "API001"
    title = "bare Exception or assert in library code"
    hint = (
        "raise the matching repro.errors type (or add one); replace "
        "'assert cond' with 'if not cond: raise ...'"
    )
    rationale = (
        "callers embedding the library catch ReproError; a bare "
        "'raise Exception' escapes that net, and asserts are stripped "
        "under 'python -O', silently disabling the check"
    )
    node_types = (ast.Raise, ast.Assert)

    def applies_to(self, context: FileContext) -> bool:
        """Library modules only (snippets outside ``repro`` are exempt)."""
        return context.module == "repro" or context.module.startswith("repro.")

    def visit(self, node: ast.AST, context: FileContext) -> None:
        """Flag ``assert`` statements and generic raises."""
        if isinstance(node, ast.Assert):
            context.report(
                self, node,
                "assert in library code — stripped under 'python -O'; "
                "raise a repro.errors type instead",
            )
            return
        exception = node.exc
        if exception is None:
            return  # bare re-raise inside an except block
        target = exception.func if isinstance(exception, ast.Call) else exception
        name = context.dotted_name(target)
        if name in ("Exception", "BaseException"):
            context.report(
                self, node,
                f"raise of bare '{name}' in library code — callers "
                "catch repro.errors.ReproError subclasses",
            )


class Obs001MetricCatalogOnly(Rule):
    """OBS001: ``repro_*`` metrics are declared only in the catalog."""

    rule_id = "OBS001"
    title = "repro_* metric created outside repro.observe.catalog"
    hint = (
        "declare the instrument in repro.observe.catalog and import it; "
        "the catalog is the single source of truth DESIGN.md §17 "
        "documents"
    )
    rationale = (
        "the metric namespace is closed: every repro_* instrument lives "
        "in repro.observe.catalog so names, label sets and bucket "
        "layouts can never drift between call sites, and the DESIGN.md "
        "§17 catalog stays an exhaustive inventory of what /metrics "
        "exposes"
    )
    node_types = (ast.Call,)

    #: Modules allowed to create repro_* instruments: the catalog (the
    #: declarations themselves) and the registry implementation.
    _ALLOWED_MODULES = ("repro.observe.catalog", "repro.observe.metrics")

    _FACTORY_NAMES = ("counter", "gauge", "histogram")

    def applies_to(self, context: FileContext) -> bool:
        """Library modules, minus the catalog/registry themselves."""
        return (
            context.module == "repro" or context.module.startswith("repro.")
        ) and context.module not in self._ALLOWED_MODULES

    def visit(self, node: ast.Call, context: FileContext) -> None:
        """Flag ``*.counter("repro_...")`` (and gauge/histogram)."""
        func = node.func
        if isinstance(func, ast.Attribute):
            factory = func.attr
        elif isinstance(func, ast.Name):
            factory = func.id
        else:
            return
        if factory not in self._FACTORY_NAMES or not node.args:
            return
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.startswith("repro_")
        ):
            return
        context.report(
            self, node,
            f"metric {first.value!r} created in '{context.module}' — "
            "declare it in repro.observe.catalog and import the "
            "instrument",
        )


#: The rule set ``python -m repro lint`` runs by default.
DEFAULT_RULES: Tuple[Rule, ...] = (
    Det001WallClockAndGlobalRng(),
    Det002UnorderedFingerprintInput(),
    Proc001SingleShotAppend(),
    Proc002ModuleLevelExecutorCallables(),
    Proc003BackendDispatchOnly(),
    Api001ErrorDiscipline(),
    Obs001MetricCatalogOnly(),
)


def rule_catalog() -> List[Dict[str, str]]:
    """Metadata of every default rule (the ``--list-rules`` payload)."""
    return [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "severity": rule.severity,
            "rationale": rule.rationale,
            "hint": rule.hint,
        }
        for rule in DEFAULT_RULES
    ]
