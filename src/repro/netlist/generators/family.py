"""The design family: named variants of the evaluation design.

The paper evaluates its tuning methods on one design — the ~20k-gate
microcontroller of Sec. VII.  The sweep harness (:mod:`repro.sweep`)
asks the obvious follow-up question — *do the method rankings hold
across designs?* — which needs a family of related-but-distinct
designs to sweep over.

A :class:`DesignSpec` describes one family member **relative to a base**
:class:`~repro.netlist.generators.microcontroller.MicrocontrollerParams`:
a datapath-width scale, an absolute pipeline depth, a fanout profile
(the density of the random control fabric and its observability taps)
and a peripheral mix.  Working relative to the base means the same
family tracks every :class:`~repro.flow.experiment.FlowConfig` scale —
``tiny()``'s ``dsp`` variant is a few hundred gates, ``paper()``'s is
~30k — and the ``microcontroller`` preset is the exact identity, so
the paper's design is the family's anchor point, byte-for-byte.

Every knob a spec touches lands in ``MicrocontrollerParams``, which
the flow fingerprints whole (:func:`~repro.flow.pipeline.
design_fingerprint` hashes ``dataclasses.asdict``) — so each family
member content-addresses its synthesis artifacts independently, with
no family-specific fingerprint plumbing anywhere downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.netlist.generators.microcontroller import MicrocontrollerParams

__all__ = [
    "DESIGN_PRESETS",
    "DesignSpec",
    "design_family",
    "design_spec",
]


@dataclass(frozen=True)
class DesignSpec:
    """One family member, described relative to a base design.

    The scales are multiplicative on the base parameters;
    ``pipeline_depth`` is absolute (a depth, not a ratio).  Derived
    parameters are clamped to keep every ``MicrocontrollerParams``
    invariant satisfied at any base scale (see :meth:`params`).
    """

    #: Stable family-member name (grid axis value, report row).
    name: str
    #: One-line description for listings and reports.
    description: str = ""
    #: Datapath-width multiplier (operands, bus, PC).
    width_scale: float = 1.0
    #: Bus-return register stages before writeback (1 = the paper's
    #: organization).
    pipeline_depth: int = 1
    #: Multiplier on the random control fabric and its observability
    #: taps — the design's fanout/congestion profile.
    fanout_profile: float = 1.0
    #: Multiplier on the peripheral mix (timers, UARTs, GPIO).
    peripheral_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("design spec needs a name")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        for knob in ("width_scale", "fanout_profile", "peripheral_scale"):
            if getattr(self, knob) <= 0:
                raise ConfigError(f"{knob} must be > 0")

    def params(self, base: MicrocontrollerParams) -> MicrocontrollerParams:
        """The member's generator parameters at a given base scale.

        Clamps keep the generator invariants intact for any base:
        the datapath floor is 8 bits, the multiplier and timers never
        exceed the datapath, and the register-file address fields must
        fit the instruction word.  The all-ones spec returns ``base``
        unchanged (the identity is exact, not just approximate).
        """
        width = max(8, round(base.width * self.width_scale))
        return replace(
            base,
            width=width,
            regfile_bits=min(base.regfile_bits, (width - 3) // 3),
            mult_width=min(
                width, max(2, round(base.mult_width * self.width_scale))
            ),
            n_timers=max(1, round(base.n_timers * self.peripheral_scale)),
            timer_width=min(base.timer_width, width),
            control_gates=max(
                50, round(base.control_gates * self.fanout_profile)
            ),
            status_width=max(
                8, round(base.status_width * self.fanout_profile)
            ),
            n_uarts=max(1, round(base.n_uarts * self.peripheral_scale)),
            gpio_width=max(
                4, min(width, round(base.gpio_width * self.peripheral_scale))
            ),
            pipeline_depth=self.pipeline_depth,
        )


#: The named family members, in documentation order.  The
#: ``microcontroller`` preset is the identity — the paper's design.
DESIGN_PRESETS: Dict[str, DesignSpec] = {
    spec.name: spec
    for spec in (
        DesignSpec(
            name="microcontroller",
            description="the paper's Sec. VII evaluation design (identity)",
        ),
        DesignSpec(
            name="dsp",
            description="wide datapath, deep multiplier, extra bus stage, "
            "few peripherals",
            width_scale=1.5,
            pipeline_depth=2,
            fanout_profile=0.8,
            peripheral_scale=0.5,
        ),
        DesignSpec(
            name="iohub",
            description="peripheral-heavy bridge: narrow datapath, doubled "
            "timer/UART/GPIO mix",
            width_scale=0.75,
            peripheral_scale=2.0,
        ),
        DesignSpec(
            name="sensor",
            description="minimal controller: half-width datapath, sparse "
            "control fabric, single peripherals",
            width_scale=0.5,
            fanout_profile=0.5,
            peripheral_scale=0.5,
        ),
    )
}


def design_family() -> Tuple[str, ...]:
    """The recognized family-member names, in documentation order."""
    return tuple(DESIGN_PRESETS)


def design_spec(name: str) -> DesignSpec:
    """Look a family member up by name, failing loudly on a typo."""
    try:
        return DESIGN_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown design {name!r} "
            f"(use one of {', '.join(DESIGN_PRESETS)})"
        ) from None
