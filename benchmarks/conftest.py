"""Shared benchmark fixtures.

One :class:`~repro.experiments.base.ExperimentContext` per session: the
statistical library, the minimum-period search and every synthesis run
are memoized inside it, so each bench pays only for what it adds.

Scale: benches default to the quick flow (scaled-down design, 30 MC
samples) which preserves every trend; set ``REPRO_SCALE=paper`` for the
full ~18k-gate, 50-sample setup.

Every bench session also writes a consolidated ``BENCH_<runid>.json``
(per-test wall times plus every experiment metric that flowed through
:func:`show`) — with or without ``pytest-benchmark`` installed — so the
perf trajectory of the repo accumulates one artifact per CI bench run.
``BENCH_RUN_ID`` pins the run id (CI sets it per job); ``BENCH_DIR``
redirects the output directory (default: the working directory).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro.experiments.base import ExperimentContext

#: Wall time per finished bench test, in run order.
_TEST_TIMES: List[Dict[str, Any]] = []

#: Experiment metrics captured by :func:`show`, keyed by experiment id.
_EXPERIMENT_METRICS: Dict[str, Dict[str, float]] = {}


@pytest.fixture(scope="session")
def context():
    return ExperimentContext()


def show(result) -> None:
    """Print an experiment's table (captured by pytest, shown with -s).

    Also folds the result's numeric cells into the session's
    ``BENCH_<runid>.json`` so the artifact carries science, not just
    wall times.
    """
    from repro.observe.ledger import metrics_from_result

    _EXPERIMENT_METRICS[result.experiment_id] = metrics_from_result(result)
    print()
    print(result.to_text())


def pytest_runtest_logreport(report):
    """Collect per-test wall times (call phase only)."""
    if report.when == "call":
        _TEST_TIMES.append({
            "test": report.nodeid,
            "seconds": round(report.duration, 4),
            "outcome": report.outcome,
        })


def pytest_sessionfinish(session, exitstatus):
    """Write the consolidated ``BENCH_<runid>.json`` artifact.

    Runs regardless of whether ``pytest-benchmark`` is installed — the
    trajectory must not depend on an optional plugin.  Skipped when no
    bench test actually ran (e.g. a collection-only invocation).
    """
    if not _TEST_TIMES:
        return
    run_id = os.environ.get("BENCH_RUN_ID") or time.strftime(
        "%Y%m%d-%H%M%S", time.gmtime()
    )
    directory = Path(os.environ.get("BENCH_DIR", "."))
    payload = {
        "run_id": run_id,
        "timestamp": time.time(),
        "scale": os.environ.get("REPRO_SCALE", "quick"),
        "exit_status": int(exitstatus),
        "total_seconds": round(sum(t["seconds"] for t in _TEST_TIMES), 4),
        "tests": list(_TEST_TIMES),
        "metrics": {k: dict(v) for k, v in sorted(_EXPERIMENT_METRICS.items())},
    }
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{run_id}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    # pytest's terminal summary has not printed yet; a plain print
    # lands right above it so the artifact path is discoverable in CI
    # logs.
    print(f"\n[bench artifact: {path}]")
