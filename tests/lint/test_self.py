"""The linter's own dogfood run: the real tree must stay clean.

This is the integration test the acceptance criteria pin: linting the
repository's ``src/`` against the committed baseline yields no new
findings.  When it fails, either fix the violation, justify it with
``# repro: noqa[RULE-ID] <reason>``, or — last resort — ratchet it
into ``lint-baseline.json`` with ``--update-baseline``.
"""

from pathlib import Path

from repro.lint import Baseline, DEFAULT_RULES, LintEngine
from repro.lint.baseline import BASELINE_FILENAME

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_is_lint_clean_against_committed_baseline():
    engine = LintEngine(DEFAULT_RULES)
    findings, n_files = engine.lint_paths([SRC], root=REPO_ROOT)
    assert n_files > 100  # the whole tree was actually scanned
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    new, _baselined = baseline.partition(findings)
    assert not new, "new lint findings:\n" + "\n".join(
        finding.to_text() for finding in new
    )


def test_committed_baseline_carries_no_stale_debt():
    engine = LintEngine(DEFAULT_RULES)
    findings, _ = engine.lint_paths([SRC], root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    assert baseline.stale_count(findings) == 0


def test_every_noqa_in_src_carries_a_justification():
    """A suppression without a reason is just hidden debt."""
    from repro.lint.engine import NOQA_PATTERN

    unjustified = []
    for path in sorted(SRC.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = NOQA_PATTERN.search(line)
            if match and not line[match.end():].strip():
                unjustified.append(f"{path.relative_to(REPO_ROOT)}:{number}")
    assert not unjustified, (
        "noqa comments without a one-line justification: "
        + ", ".join(unjustified)
    )
