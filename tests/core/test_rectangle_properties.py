"""Property-based invariants of largest-rectangle extraction.

Paper Algorithm 1 contract: the returned rectangle is contained in the
binary LUT (all ones), has maximal area (cross-checked against the
literal quadruple-loop specification), and therefore cannot be grown
in any direction.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.rectangle import largest_rectangle, largest_rectangle_paper

#: Random binary matrices big enough to be interesting, small enough
#: for the O(N^3 M^3) reference implementation.
MATRICES = arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 7), st.integers(1, 7)),
    elements=st.booleans(),
)

#: Larger matrices for the optimized implementation's own invariants.
LARGE_MATRICES = arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 14), st.integers(1, 14)),
    elements=st.booleans(),
)


class TestContainment:
    @given(matrix=LARGE_MATRICES)
    @settings(max_examples=200, deadline=None)
    def test_rectangle_is_contained_in_the_binary_lut(self, matrix):
        """Every entry inside the returned rectangle is a one."""
        rect = largest_rectangle(matrix)
        if rect is None:
            assert not matrix.any()
            return
        block = matrix[rect.row_lo : rect.row_hi + 1, rect.col_lo : rect.col_hi + 1]
        assert block.all()
        assert block.size == rect.area

    @given(matrix=LARGE_MATRICES)
    @settings(max_examples=200, deadline=None)
    def test_rectangle_cannot_be_extended(self, matrix):
        """Maximality: growing one step in any direction either leaves
        the matrix or covers a zero."""
        rect = largest_rectangle(matrix)
        if rect is None:
            return
        n_rows, n_cols = matrix.shape
        if rect.row_lo > 0:
            assert not matrix[
                rect.row_lo - 1, rect.col_lo : rect.col_hi + 1
            ].all()
        if rect.row_hi < n_rows - 1:
            assert not matrix[
                rect.row_hi + 1, rect.col_lo : rect.col_hi + 1
            ].all()
        if rect.col_lo > 0:
            assert not matrix[
                rect.row_lo : rect.row_hi + 1, rect.col_lo - 1
            ].all()
        if rect.col_hi < n_cols - 1:
            assert not matrix[
                rect.row_lo : rect.row_hi + 1, rect.col_hi + 1
            ].all()


class TestAgainstPaperSpecification:
    @given(matrix=MATRICES)
    @settings(max_examples=150, deadline=None)
    def test_matches_literal_algorithm_including_tie_break(self, matrix):
        """The summed-area-table version returns the *same* rectangle
        as the paper's quadruple loop — same area, same corner, which
        pins the origin-preferring tie-break."""
        fast = largest_rectangle(matrix)
        reference = largest_rectangle_paper(matrix)
        assert fast == reference

    @given(matrix=MATRICES)
    @settings(max_examples=100, deadline=None)
    def test_area_is_globally_maximal(self, matrix):
        """No all-ones rectangle anywhere in the matrix beats the
        returned area (brute-force check)."""
        rect = largest_rectangle(matrix)
        best = 0
        n_rows, n_cols = matrix.shape
        for row_lo in range(n_rows):
            for col_lo in range(n_cols):
                for row_hi in range(row_lo, n_rows):
                    for col_hi in range(col_lo, n_cols):
                        if matrix[row_lo : row_hi + 1, col_lo : col_hi + 1].all():
                            best = max(
                                best,
                                (row_hi - row_lo + 1) * (col_hi - col_lo + 1),
                            )
        assert (rect.area if rect else 0) == best
